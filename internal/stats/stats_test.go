package stats

import (
	"bytes"
	"encoding/csv"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 1, 5)
	for _, v := range []float64{0.05, 0.15, 0.25, 0.55, 0.95, 1.0} {
		h.Add(v)
	}
	want := []int{2, 1, 1, 0, 2} // 1.0 lands in the last bucket
	for i, n := range want {
		if h.Counts[i] != n {
			t.Errorf("bucket %d = %d, want %d", i, h.Counts[i], n)
		}
	}
	if h.Total != 6 {
		t.Errorf("Total = %d, want 6", h.Total)
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(7)
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Errorf("outliers not clamped: %v", h.Counts)
	}
}

func TestHistogramPercent(t *testing.T) {
	h := NewHistogram(0, 1, 2)
	h.Add(0.1)
	h.Add(0.2)
	h.Add(0.9)
	if got := h.Percent(0); math.Abs(got-66.666) > 0.01 {
		t.Errorf("Percent(0) = %v", got)
	}
	ps := h.Percents()
	var sum float64
	for _, p := range ps {
		sum += p
	}
	if math.Abs(sum-100) > 1e-9 {
		t.Errorf("percents sum to %v", sum)
	}
}

func TestHistogramEmptyPercent(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	if h.Percent(0) != 0 {
		t.Error("empty histogram percent not 0")
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram did not panic")
		}
	}()
	NewHistogram(1, 0, 5)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.Std-1.2909944487) > 1e-9 {
		t.Errorf("Std = %v", s.Std)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Errorf("odd median = %v, want 3", odd.Median)
	}
	empty := Summarize(nil)
	if empty.N != 0 || empty.Mean != 0 {
		t.Errorf("empty summary = %+v", empty)
	}
}

func TestSummarizeBoundsProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		// Bounded inputs: the property is about ordering, not float
		// overflow at ±1e308.
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.Median && s.Median <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("Mean wrong")
	}
}

func TestBinnedMeans(t *testing.T) {
	xs := []float64{0.1, 0.15, 0.5, 0.9}
	ys := []float64{1, 3, 10, 7}
	means, counts := BinnedMeans(xs, ys, 0, 1, 5)
	if counts[0] != 2 || means[0] != 2 {
		t.Errorf("bin 0 = (%v, %d), want (2, 2)", means[0], counts[0])
	}
	if counts[2] != 1 || means[2] != 10 {
		t.Errorf("bin 2 = (%v, %d)", means[2], counts[2])
	}
	if !math.IsNaN(means[1]) {
		t.Errorf("empty bin mean = %v, want NaN", means[1])
	}
	if counts[4] != 1 || means[4] != 7 {
		t.Errorf("bin 4 = (%v, %d)", means[4], counts[4])
	}
}

func TestBinnedMeansMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched xs/ys did not panic")
		}
	}()
	BinnedMeans([]float64{1}, []float64{1, 2}, 0, 1, 2)
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRowf("alpha", 0.5)
	tb.AddRowf("n", 42)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "0.500") || !strings.Contains(out, "42") {
		t.Errorf("missing cells in:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title, header, separator, two rows.
	if len(lines) != 5 {
		t.Errorf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d, want 2", tb.NumRows())
	}
}

func TestTableColumnsAligned(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("very-long-cell", "x")
	tb.AddRow("y", "z")
	lines := strings.Split(strings.TrimSpace(tb.String()), "\n")
	// The second column must start at the same offset in every row.
	idx := strings.Index(lines[0], "b")
	for _, l := range lines[2:] {
		if len(l) <= idx {
			t.Fatalf("row %q shorter than header column offset", l)
		}
	}
}

func TestTableHandlesRaggedRows(t *testing.T) {
	tb := NewTable("ragged", "a")
	tb.AddRow("x", "extra", "more")
	out := tb.String()
	if !strings.Contains(out, "extra") || !strings.Contains(out, "more") {
		t.Errorf("ragged cells dropped:\n%s", out)
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := NewTable("ignored title", "name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow("with,comma", `with"quote`)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("csv has %d rows, want 3", len(rows))
	}
	if rows[0][0] != "name" || rows[2][0] != "with,comma" || rows[2][1] != `with"quote` {
		t.Errorf("csv rows corrupted: %v", rows)
	}
}
