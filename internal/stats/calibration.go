package stats

import "fmt"

// Calibration quantifies how well probabilistic predictions match observed
// frequencies: predictions are binned by stated probability and each bin's
// mean prediction is compared against the empirical rate of the positive
// outcome. The experiment harness uses it to compare the inference model's
// P(z) posteriors against the Dawid–Skene baseline's.
type Calibration struct {
	// Edges and the per-bin aggregates; bin i covers
	// [Edges[i], Edges[i+1]).
	Edges     []float64
	PredSum   []float64
	TrueCount []int
	Count     []int
	// BrierSum accumulates (p − outcome)² for the Brier score.
	BrierSum float64
	Total    int
}

// NewCalibration creates a calibration accumulator with n equal-width
// probability bins over [0, 1].
func NewCalibration(n int) *Calibration {
	if n <= 0 {
		panic(fmt.Sprintf("stats: invalid calibration bin count %d", n))
	}
	edges := make([]float64, n+1)
	for i := range edges {
		edges[i] = float64(i) / float64(n)
	}
	return &Calibration{
		Edges:     edges,
		PredSum:   make([]float64, n),
		TrueCount: make([]int, n),
		Count:     make([]int, n),
	}
}

// Add records one prediction p for a binary outcome.
func (c *Calibration) Add(p float64, outcome bool) {
	n := len(c.Count)
	i := int(p * float64(n))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	c.PredSum[i] += p
	c.Count[i]++
	c.Total++
	o := 0.0
	if outcome {
		c.TrueCount[i]++
		o = 1
	}
	c.BrierSum += (p - o) * (p - o)
}

// Brier returns the mean squared error between predictions and outcomes —
// 0 is perfect, 0.25 is an uninformative constant 0.5.
func (c *Calibration) Brier() float64 {
	if c.Total == 0 {
		return 0
	}
	return c.BrierSum / float64(c.Total)
}

// ECE returns the expected calibration error: the count-weighted mean
// absolute gap between each bin's mean prediction and its empirical rate.
func (c *Calibration) ECE() float64 {
	if c.Total == 0 {
		return 0
	}
	var ece float64
	for i, n := range c.Count {
		if n == 0 {
			continue
		}
		meanPred := c.PredSum[i] / float64(n)
		rate := float64(c.TrueCount[i]) / float64(n)
		gap := meanPred - rate
		if gap < 0 {
			gap = -gap
		}
		ece += gap * float64(n) / float64(c.Total)
	}
	return ece
}

// BinRow describes one reliability-diagram bin.
type BinRow struct {
	Lo, Hi   float64
	MeanPred float64
	Rate     float64
	Count    int
}

// Bins returns the non-empty reliability bins in order.
func (c *Calibration) Bins() []BinRow {
	var out []BinRow
	for i, n := range c.Count {
		if n == 0 {
			continue
		}
		out = append(out, BinRow{
			Lo:       c.Edges[i],
			Hi:       c.Edges[i+1],
			MeanPred: c.PredSum[i] / float64(n),
			Rate:     float64(c.TrueCount[i]) / float64(n),
			Count:    n,
		})
	}
	return out
}
