// Package stats provides the small statistics toolkit the experiments use:
// binned histograms (for the paper's Figures 6–8), numeric summaries,
// series, and aligned text-table rendering for the benchmark harness
// output.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram bins values in [0, 1] into equal-width buckets and reports the
// percentage of observations per bucket — the shape of the paper's
// Figure 6.
type Histogram struct {
	// Edges has len(Counts)+1 entries; bucket i covers
	// [Edges[i], Edges[i+1]), with the final bucket closed on the right.
	Edges  []float64
	Counts []int
	Total  int
}

// NewHistogram creates a histogram over [lo, hi] with n equal buckets.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v] with %d buckets", lo, hi, n))
	}
	edges := make([]float64, n+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(n)
	}
	return &Histogram{Edges: edges, Counts: make([]int, n)}
}

// Add records one observation. Values outside the range are clamped into
// the first or last bucket.
func (h *Histogram) Add(v float64) {
	n := len(h.Counts)
	lo, hi := h.Edges[0], h.Edges[n]
	i := int(float64(n) * (v - lo) / (hi - lo))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	h.Counts[i]++
	h.Total++
}

// Percent returns the share of observations in bucket i, in percent.
func (h *Histogram) Percent(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return 100 * float64(h.Counts[i]) / float64(h.Total)
}

// Percents returns all bucket percentages.
func (h *Histogram) Percents() []float64 {
	out := make([]float64, len(h.Counts))
	for i := range out {
		out[i] = h.Percent(i)
	}
	return out
}

// Summary holds the usual scalar descriptors of a sample.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// BinnedMeans groups (x, y) observations by which of the n equal-width x
// buckets over [lo, hi] they fall in, returning the mean y per bucket and
// the bucket populations. Buckets with no observations report NaN. This is
// the aggregation behind the paper's accuracy-vs-distance curves
// (Figures 7 and 8).
func BinnedMeans(xs, ys []float64, lo, hi float64, n int) (means []float64, counts []int) {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("stats: BinnedMeans with %d xs and %d ys", len(xs), len(ys)))
	}
	sums := make([]float64, n)
	counts = make([]int, n)
	for i, x := range xs {
		b := int(float64(n) * (x - lo) / (hi - lo))
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		sums[b] += ys[i]
		counts[b]++
	}
	means = make([]float64, n)
	for b := range means {
		if counts[b] == 0 {
			means[b] = math.NaN()
		} else {
			means[b] = sums[b] / float64(counts[b])
		}
	}
	return means, counts
}
