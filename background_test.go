package poilabel

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"poilabel/internal/core"
)

// bgOpts returns background-fit options that never fire on their own: the
// interval is an hour and the eager threshold unreachable, so every fit in
// the test is driven explicitly through WaitFresh. That makes the pipeline
// deterministic enough to pin bit-identical results against the synchronous
// path.
func bgOpts() []ServiceOption {
	return []ServiceOption{WithBackgroundFit(time.Hour, 1<<30)}
}

// slowFitConfig makes a full fit take long enough to observe from outside:
// serial E-step, effectively-never tolerance, and a deep iteration cap.
func slowFitConfig(maxIter int) core.Config {
	cfg := core.DefaultConfig()
	cfg.Parallelism = 1
	cfg.Tol = 1e-12
	cfg.MaxIter = maxIter
	return cfg
}

// fitRecorder captures FitObserved callbacks so tests can read the exact
// wall-clock duration of background fits.
type fitRecorder struct {
	mu       sync.Mutex
	elapsed  []time.Duration
	errs     []error
	answered int
}

func (r *fitRecorder) FitObserved(elapsed time.Duration, converged bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.elapsed = append(r.elapsed, elapsed)
	r.errs = append(r.errs, err)
}

func (r *fitRecorder) AnswerObserved(full bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.answered++
}

func (r *fitRecorder) DedupHitsObserved(int) {}

func (r *fitRecorder) fitDurations() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]time.Duration(nil), r.elapsed...)
}

// recordedAnswer is one submitted answer, replayable into a second service
// so two services can be fed byte-identical histories.
type recordedAnswer struct {
	worker, task int
	selected     []bool
}

// registerGridWorld registers a synthetic world of nTasks three-label tasks
// and nWorkers single-home workers under the usual string IDs, spread over a
// grid so the sharded and federated engines get non-degenerate partitions.
// The model rejects duplicate (worker, task) answers, so tests that feed in
// multiple rounds need a world with enough distinct pairs per round.
func registerGridWorld(t *testing.T, svc *Service, nTasks, nWorkers int) *GroundTruth {
	t.Helper()
	truth := make([][]bool, nTasks)
	for i := 0; i < nTasks; i++ {
		if err := svc.AddTask(tid(i), TaskSpec{
			Name:     "poi",
			Location: Pt(float64(i%16), float64(i/16)),
			Labels:   []string{"a", "b", "c"},
		}); err != nil {
			t.Fatal(err)
		}
		truth[i] = []bool{i%2 == 0, true, false}
	}
	for i := 0; i < nWorkers; i++ {
		if err := svc.AddWorker(wid(i), WorkerSpec{
			Name:      "w",
			Locations: []Point{Pt(float64(2*(i%8)), 0.5)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	return &GroundTruth{Truth: truth}
}

// feedPairs fabricates one answer for every (worker, task) pair in the given
// half-open ranges, submits them to svc, and returns the exact submissions.
// Worker index 3 answers at chance, matching the tiny world's spammer.
func feedPairs(t *testing.T, svc *Service, truth *GroundTruth, seed int64, wFrom, wTo, tFrom, tTo int) []recordedAnswer {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var log []recordedAnswer
	for wi := wFrom; wi < wTo; wi++ {
		for ti := tFrom; ti < tTo; ti++ {
			p := 0.9
			if wi == 3 {
				p = 0.5
			}
			a := answer(WorkerID(wi), TaskID(ti), truth, p, rng)
			if err := svc.SubmitAnswer(wid(wi), tid(ti), a.Selected); err != nil {
				t.Fatal(err)
			}
			log = append(log, recordedAnswer{wi, ti, a.Selected})
		}
	}
	return log
}

// feedTinyWorld feeds every (worker, task) pair of the tiny world once.
func feedTinyWorld(t *testing.T, svc *Service, truth *GroundTruth, seed int64) []recordedAnswer {
	t.Helper()
	return feedPairs(t, svc, truth, seed, 0, 4, 0, 8)
}

// replayAnswers feeds a recorded history into svc verbatim.
func replayAnswers(t *testing.T, svc *Service, log []recordedAnswer) {
	t.Helper()
	for _, a := range log {
		if err := svc.SubmitAnswer(wid(a.worker), tid(a.task), a.selected); err != nil {
			t.Fatal(err)
		}
	}
}

// requireIdenticalResults asserts two services produce bit-identical result
// sets and worker estimates — the equivalence contract between a quiesced
// background pipeline and a synchronous fit.
func requireIdenticalResults(t *testing.T, got, want *Service) {
	t.Helper()
	ctx := context.Background()
	gr, err := got.ResultSet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wr, err := want.ResultSet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(gr.Prob) != len(wr.Prob) {
		t.Fatalf("result sizes differ: %d vs %d tasks", len(gr.Prob), len(wr.Prob))
	}
	for ti := range wr.Prob {
		for k := range wr.Prob[ti] {
			if gr.Prob[ti][k] != wr.Prob[ti][k] {
				t.Fatalf("task %d label %d: prob %v != %v (not bit-identical)",
					ti, k, gr.Prob[ti][k], wr.Prob[ti][k])
			}
			if gr.Inferred[ti][k] != wr.Inferred[ti][k] {
				t.Fatalf("task %d label %d: inferred %v != %v", ti, k, gr.Inferred[ti][k], wr.Inferred[ti][k])
			}
		}
	}
	for wi := 0; wi < want.NumWorkers(); wi++ {
		gi, err := got.WorkerInfo(wid(wi))
		if err != nil {
			t.Fatal(err)
		}
		wiw, err := want.WorkerInfo(wid(wi))
		if err != nil {
			t.Fatal(err)
		}
		if gi.Quality != wiw.Quality {
			t.Fatalf("worker %d quality %v != %v (not bit-identical)", wi, gi.Quality, wiw.Quality)
		}
		for k := range wiw.DistanceSensitivity {
			if gi.DistanceSensitivity[k] != wiw.DistanceSensitivity[k] {
				t.Fatalf("worker %d sensitivity[%d] %v != %v", wi, k,
					gi.DistanceSensitivity[k], wiw.DistanceSensitivity[k])
			}
		}
	}
}

// TestWithBackgroundFitValidation pins the option's input contract.
func TestWithBackgroundFitValidation(t *testing.T) {
	if _, err := NewService(WithBackgroundFit(0, 5)); err == nil {
		t.Fatal("WithBackgroundFit(0, …) should be rejected")
	}
	if _, err := NewService(WithBackgroundFit(-time.Second, 5)); err == nil {
		t.Fatal("WithBackgroundFit(-1s, …) should be rejected")
	}
	svc, err := NewService(WithBackgroundFit(time.Minute, 0)) // minAnswers clamps to 1
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(context.Background())
	if !svc.FitStats().Enabled {
		t.Fatal("FitStats().Enabled = false on a background-fit service")
	}
}

// TestBackgroundQuiescedMatchesSync is the equivalence contract: a
// background-fit service, once quiesced through WaitFresh, must produce
// results bit-identical to a synchronous service fed the same answers and
// fitted explicitly — on every engine. The background fit runs over a
// checkpoint-grade snapshot warm-started from the live parameters, so EM
// starts from exactly the state the synchronous fit starts from.
func TestBackgroundQuiescedMatchesSync(t *testing.T) {
	for _, eng := range engineMatrix {
		t.Run(eng.name, func(t *testing.T) {
			ctx := context.Background()

			bg, err := NewService(append(append([]ServiceOption{}, eng.opts...), bgOpts()...)...)
			if err != nil {
				t.Fatal(err)
			}
			defer bg.Close(ctx)
			truth := registerTinyWorld(t, bg)
			log := feedTinyWorld(t, bg, truth, 23)

			sync, err := NewService(append([]ServiceOption{WithFullEMInterval(0)}, eng.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			registerTinyWorld(t, sync)
			replayAnswers(t, sync, log)

			if err := bg.WaitFresh(ctx); err != nil {
				t.Fatal(err)
			}
			if _, err := sync.Fit(ctx); err != nil {
				t.Fatal(err)
			}
			requireIdenticalResults(t, bg, sync)

			st := bg.FitStats()
			if want := uint64(len(log)); st.FullFitAnswers != want || st.CoveredAnswers != want {
				t.Fatalf("after WaitFresh: full=%d covered=%d, want both %d",
					st.FullFitAnswers, st.CoveredAnswers, want)
			}
			if st.Staleness != 0 {
				t.Fatalf("staleness %v after WaitFresh, want 0", st.Staleness)
			}
		})
	}
}

// TestBackgroundStalenessContract pins the read-path contract: on a
// background-fit service, Results never triggers a fit — readers see the
// published generation N, however stale, while generation N+1 is (or is not
// yet) being fitted. Freshness is exchanged for boundedness; WaitFresh is
// the explicit barrier that buys freshness back.
func TestBackgroundStalenessContract(t *testing.T) {
	ctx := context.Background()
	svc, err := NewService(append([]ServiceOption{WithEngine(EngineSingle)}, bgOpts()...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(ctx)
	truth := registerTinyWorld(t, svc)

	before, err := svc.Results(ctx) // builds the engine, publishes generation 1
	if err != nil {
		t.Fatal(err)
	}
	gen0 := svc.FitStats().Generation
	if gen0 == 0 {
		t.Fatal("no generation published after first read")
	}

	feedTinyWorld(t, svc, truth, 29)

	// The scheduler never fires (hour-long interval, unreachable threshold),
	// so these reads must all serve the pre-answer generation without ever
	// fitting inline.
	for i := 0; i < 10; i++ {
		res, err := svc.Results(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(before) {
			t.Fatalf("read %d: %d results, want %d", i, len(res), len(before))
		}
	}
	st := svc.FitStats()
	if st.Generation != gen0 {
		t.Fatalf("generation moved %d → %d on reads alone", gen0, st.Generation)
	}
	if st.Fits != 0 {
		t.Fatalf("%d fits ran; Results must never fit on a background service", st.Fits)
	}
	if st.Staleness <= 0 {
		t.Fatalf("staleness %v with %d uncovered answers, want > 0", st.Staleness, 32)
	}

	if err := svc.WaitFresh(ctx); err != nil {
		t.Fatal(err)
	}
	st = svc.FitStats()
	if st.Generation <= gen0 {
		t.Fatalf("generation %d did not advance past %d after WaitFresh", st.Generation, gen0)
	}
	if st.Fits == 0 {
		t.Fatal("WaitFresh quiesced without running a fit")
	}
	if st.Staleness != 0 {
		t.Fatalf("staleness %v after WaitFresh, want 0", st.Staleness)
	}
}

// TestBackgroundFitNeverBlocksReads is the zero-pause claim itself: while a
// deliberately slow full fit is in flight, every read and assignment request
// completes in a small fraction of the fit's duration, and readers keep
// seeing the previous generation. A synchronous service would park all of
// them behind the fit.
func TestBackgroundFitNeverBlocksReads(t *testing.T) {
	ctx := context.Background()
	rec := &fitRecorder{}
	svc, err := NewService(append([]ServiceOption{
		WithEngine(EngineSingle),
		WithModelConfig(slowFitConfig(3000)),
		WithObserver(rec),
	}, bgOpts()...)...)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(ctx)
	// 800 answers at a serial, never-converging fit keep EM busy for a few
	// hundred milliseconds — long enough to measure requests against.
	truth := registerGridWorld(t, svc, 100, 8)
	feedPairs(t, svc, truth, 31, 0, 8, 0, 100)
	genBefore := svc.FitStats().Generation

	waitDone := make(chan error, 1)
	go func() { waitDone <- svc.WaitFresh(ctx) }()

	deadline := time.Now().Add(10 * time.Second)
	for !svc.FitStats().InFlight {
		if time.Now().After(deadline) {
			t.Fatal("fit never started")
		}
		time.Sleep(time.Millisecond)
	}

	var maxLat time.Duration
	requests := 0
	for svc.FitStats().InFlight {
		start := time.Now()
		if _, err := svc.Results(ctx); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.WorkerInfo(wid(0)); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.RequestTasks(ctx, []string{wid(1)}); err != nil {
			t.Fatal(err)
		}
		if lat := time.Since(start); lat > maxLat {
			maxLat = lat
		}
		// Readers may only ever see the generation published before the fit
		// (or, in the swap window just before InFlight clears, the one the
		// fit just published) — never a half-fitted state.
		if g := svc.FitStats().Generation; g != genBefore && g != genBefore+1 {
			t.Fatalf("generation %d observed mid-fit, want %d or %d", g, genBefore, genBefore+1)
		}
		requests++
	}
	if err := <-waitDone; err != nil {
		t.Fatal(err)
	}

	durs := rec.fitDurations()
	if len(durs) == 0 {
		t.Fatal("no fit observed")
	}
	fitDur := durs[0]
	if fitDur < 100*time.Millisecond {
		t.Skipf("fit finished in %v; too fast to compare request latency against", fitDur)
	}
	if requests == 0 {
		t.Fatal("no requests completed while the fit was in flight")
	}
	// "Much less than": a full request triple must cost under a quarter of
	// the fit. In practice it is microseconds against hundreds of
	// milliseconds; the slack absorbs scheduler noise on loaded CI hosts.
	if maxLat >= fitDur/4 {
		t.Fatalf("max request latency %v with a %v fit in flight (%d requests); want < fit/4", maxLat, fitDur, requests)
	}
	t.Logf("fit %v, %d request triples, max latency %v", fitDur, requests, maxLat)
}

// TestBackgroundCheckpointMidFit checkpoints while a slow fit is in flight
// and asserts the snapshot is a consistent generation: restoring it yields a
// service whose generation counter moves strictly forward and whose results,
// once quiesced, are bit-identical to a synchronous service fed the same
// history. The delta being merged into the in-flight fit must never leak
// half-applied into the checkpoint.
func TestBackgroundCheckpointMidFit(t *testing.T) {
	ctx := context.Background()
	mkOpts := func() []ServiceOption {
		return append([]ServiceOption{
			WithEngine(EngineSingle),
			WithModelConfig(slowFitConfig(1500)),
		}, bgOpts()...)
	}

	svc, err := NewService(mkOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close(ctx)
	truth := registerGridWorld(t, svc, 120, 8)

	// Round 1: feed and quiesce, so the service has a fitted generation.
	round1 := feedPairs(t, svc, truth, 41, 0, 8, 0, 40)
	if err := svc.WaitFresh(ctx); err != nil {
		t.Fatal(err)
	}

	// Round 2 starts a slow fit; the extra answers below land in its delta.
	round2 := feedPairs(t, svc, truth, 43, 0, 8, 40, 80)
	waitDone := make(chan error, 1)
	go func() { waitDone <- svc.WaitFresh(ctx) }()
	deadline := time.Now().Add(10 * time.Second)
	for !svc.FitStats().InFlight {
		if time.Now().After(deadline) {
			t.Fatal("fit never started")
		}
		time.Sleep(time.Millisecond)
	}
	delta := feedPairs(t, svc, truth, 47, 0, 8, 80, 120)

	genAtCapture := svc.FitStats().Generation
	var buf bytes.Buffer
	if err := svc.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	if err := <-waitDone; err != nil {
		t.Fatal(err)
	}

	restored, err := NewService(mkOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close(ctx)
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	st := restored.FitStats()
	if st.Generation <= genAtCapture {
		t.Fatalf("restored generation %d not past capture-time %d", st.Generation, genAtCapture)
	}
	total := uint64(len(round1) + len(round2) + len(delta))
	if st.CoveredAnswers != total {
		t.Fatalf("restored publication covers %d answers, want %d", st.CoveredAnswers, total)
	}
	if st.FullFitAnswers > st.CoveredAnswers {
		t.Fatalf("inconsistent restored publication: full %d > covered %d", st.FullFitAnswers, st.CoveredAnswers)
	}
	if err := restored.WaitFresh(ctx); err != nil {
		t.Fatal(err)
	}
	if g := restored.FitStats().Generation; g <= st.Generation {
		t.Fatalf("generation %d did not advance past %d after post-restore WaitFresh", g, st.Generation)
	}

	// The synchronous comparator replays the identical history with explicit
	// fits at the same points the background service fitted.
	cmp, err := NewService(WithEngine(EngineSingle), WithModelConfig(slowFitConfig(1500)), WithFullEMInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	registerGridWorld(t, cmp, 120, 8)
	replayAnswers(t, cmp, round1)
	if _, err := cmp.Fit(ctx); err != nil {
		t.Fatal(err)
	}
	replayAnswers(t, cmp, round2)
	replayAnswers(t, cmp, delta)
	if _, err := cmp.Fit(ctx); err != nil {
		t.Fatal(err)
	}
	requireIdenticalResults(t, restored, cmp)
}

// TestBackgroundCloseDrains pins the shutdown contract: Close folds every
// outstanding answer into one final fully fitted generation (what the
// pre-checkpoint hook relies on for zero lost answers across a rolling
// restart), stays idempotent, and fails later barriers with ErrClosed.
func TestBackgroundCloseDrains(t *testing.T) {
	ctx := context.Background()
	svc, err := NewService(append([]ServiceOption{WithEngine(EngineSingle)}, bgOpts()...)...)
	if err != nil {
		t.Fatal(err)
	}
	truth := registerTinyWorld(t, svc)
	log := feedPairs(t, svc, truth, 53, 0, 3, 0, 8) // worker 3's pairs stay free

	if err := svc.Close(ctx); err != nil {
		t.Fatal(err)
	}
	st := svc.FitStats()
	if want := uint64(len(log)); st.FullFitAnswers != want {
		t.Fatalf("drain published full coverage %d, want %d", st.FullFitAnswers, want)
	}
	if err := svc.Close(ctx); err != nil {
		t.Fatal(err) // idempotent
	}

	// The service keeps serving and learning after Close; only the barrier
	// on a *new* full fit reports closure.
	if err := svc.SubmitAnswer(wid(3), tid(0), []bool{true, true, false}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Results(ctx); err != nil {
		t.Fatal(err)
	}
	if err := svc.WaitFresh(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("WaitFresh after Close = %v, want ErrClosed", err)
	}
}

// TestBackgroundConcurrencyStress hammers every public entry point of a
// background-fit service at once — submissions, lock-free reads, assignment
// planning, checkpoints, stats — while fits cycle at a few-millisecond
// cadence, on every engine. Run under -race (CI does), this is the proof
// that the atomic-swap publication protocol has no data races; the final
// WaitFresh + equivalence-style sanity check proves it also converges to a
// coherent state.
func TestBackgroundConcurrencyStress(t *testing.T) {
	for _, eng := range engineMatrix {
		t.Run(eng.name, func(t *testing.T) {
			ctx := context.Background()
			svc, err := NewService(append(append([]ServiceOption{}, eng.opts...),
				WithBackgroundFit(2*time.Millisecond, 4))...)
			if err != nil {
				t.Fatal(err)
			}
			const nTasks, nWorkers = 200, 16
			truth := registerGridWorld(t, svc, nTasks, nWorkers)

			const runFor = 250 * time.Millisecond
			stop := make(chan struct{})
			var wg sync.WaitGroup
			fail := make(chan error, 16)

			// Submitters: each walks a disjoint half of the (worker, task)
			// grid — the model rejects duplicate pairs — and stops early if it
			// exhausts its share before the clock runs out.
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func(g int, seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					for i := g; i < nTasks*nWorkers; i += 2 {
						select {
						case <-stop:
							return
						default:
						}
						wi, ti := i%nWorkers, i/nWorkers
						a := answer(WorkerID(wi), TaskID(ti), truth, 0.9, rng)
						if err := svc.SubmitAnswer(wid(wi), tid(ti), a.Selected); err != nil {
							fail <- fmt.Errorf("submit: %w", err)
							return
						}
					}
				}(g, int64(61+g))
			}
			// Readers: lock-free published-state reads.
			for g := 0; g < 2; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						if _, err := svc.Results(ctx); err != nil {
							fail <- fmt.Errorf("results: %w", err)
							return
						}
						if _, err := svc.WorkerInfo(wid(i % nWorkers)); err != nil {
							fail <- fmt.Errorf("worker info: %w", err)
							return
						}
						svc.FitStats()
					}
				}()
			}
			// Assigner: write-locked planning against the live engine.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := svc.RequestTasks(ctx, []string{wid(i % nWorkers)}); err != nil {
						fail <- fmt.Errorf("request tasks: %w", err)
						return
					}
				}
			}()
			// Checkpointer: read-locked capture racing the fit swap.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					var buf bytes.Buffer
					if err := svc.Checkpoint(&buf); err != nil {
						fail <- fmt.Errorf("checkpoint: %w", err)
						return
					}
				}
			}()

			time.Sleep(runFor)
			close(stop)
			wg.Wait()
			select {
			case err := <-fail:
				t.Fatal(err)
			default:
			}

			// Quiesce and prove the surviving state is coherent: the
			// publication covers every accepted answer via a full fit, and a
			// restored copy of the final checkpoint agrees with the original.
			if err := svc.WaitFresh(ctx); err != nil {
				t.Fatal(err)
			}
			st := svc.FitStats()
			if want := uint64(svc.AnswerCount()); st.FullFitAnswers != want {
				t.Fatalf("quiesced publication covers %d answers via full fit, want %d", st.FullFitAnswers, want)
			}
			var buf bytes.Buffer
			if err := svc.Checkpoint(&buf); err != nil {
				t.Fatal(err)
			}
			restored, err := NewService(append(append([]ServiceOption{}, eng.opts...), bgOpts()...)...)
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatal(err)
			}
			requireIdenticalResults(t, restored, svc)
			if err := svc.Close(ctx); err != nil {
				t.Fatal(err)
			}
			if err := restored.Close(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
}
