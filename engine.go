package poilabel

import (
	"context"
	"fmt"
	"math/rand"

	"poilabel/internal/assign"
	"poilabel/internal/core"
	"poilabel/internal/federation"
	"poilabel/internal/geo"
	"poilabel/internal/shard"
)

// EngineKind selects the inference/assignment backend behind a Service.
type EngineKind int

// Available engines. See PERFORMANCE.md for guidance on choosing one.
const (
	// EngineSingle runs one inference model over the whole task set:
	// per-answer incremental EM with periodic full fits. The right choice
	// for interactive workloads up to one city's scale.
	EngineSingle EngineKind = iota
	// EngineSharded partitions one city's tasks into K geographic shards
	// fitted concurrently (internal/shard). The right choice for batch
	// workloads where a single model's full EM is the wall-clock
	// bottleneck.
	EngineSharded
	// EngineFederated routes tasks and workers across per-city sharded
	// instances by geography (internal/federation), merging cross-city
	// worker estimates the same answer-count-weighted way shards do. The
	// right choice when the task universe spans several cities.
	EngineFederated
)

// String implements fmt.Stringer.
func (k EngineKind) String() string {
	switch k {
	case EngineSingle:
		return "single"
	case EngineSharded:
		return "sharded"
	case EngineFederated:
		return "federated"
	}
	return fmt.Sprintf("EngineKind(%d)", int(k))
}

// Engine is the backend behind a Service: an inference model plus a task
// assigner over dense task/worker indices. The Service owns ID interning,
// budget accounting, pending-pair dedup, and locking; engines only infer
// and plan. The three implementations are selected with WithEngine.
//
// Engines are not safe for concurrent use on their own — the Service
// serializes access.
type Engine interface {
	// Name returns the engine's short display name.
	Name() string
	// Observe appends an answer to the log without updating estimates.
	Observe(a Answer) error
	// Learn appends an answer and applies the engine's cheap per-answer
	// update where it has one (incremental EM for the single engine);
	// batch engines just observe.
	Learn(a Answer) error
	// Fit runs a full fit, reporting convergence. The context is honored
	// between EM iterations.
	Fit(ctx context.Context) (converged bool, err error)
	// Result returns the current inference over all tasks in dense order.
	Result() *Result
	// Assign plans up to h tasks per requesting worker, spending at most
	// budget pairs (negative budget means unlimited). Pairs for which skip
	// returns true are excluded during planning; skip may be nil.
	Assign(workers []WorkerID, h, budget int, skip func(WorkerID, TaskID) bool) map[WorkerID][]TaskID
	// AddTask registers a task with the next dense index.
	AddTask(t Task) error
	// AddWorker registers a worker with the next dense index.
	AddWorker(w Worker) error
	// WorkerQuality returns the estimated P(i_w = 1).
	WorkerQuality(w WorkerID) float64
	// DistanceSensitivity returns a copy of the worker's estimated
	// sensitivity multinomial over the distance-function set.
	DistanceSensitivity(w WorkerID) []float64
	// TotalAnswers returns the number of answers observed so far.
	TotalAnswers() int
	// Publish returns a self-contained copy of the engine's read state —
	// the dense result plus per-worker quality and sensitivity estimates.
	// Nothing in it aliases the engine, so the background-fit pipeline can
	// hand it to lock-free readers while the engine keeps mutating.
	Publish() *PublishedParams
	// PlanSnapshot returns an immutable planning view of the engine's
	// current state (parameters, coverage, distances), or nil when the
	// engine does not support snapshot planning. A non-nil snapshot lets
	// the Service run assignment planning off the write lock and validate
	// picks in a short optimistic commit; see assign.SnapshotModel.
	PlanSnapshot() *assign.Snapshot
}

// answerChecker is the narrow view the optimistic commit needs of the live
// engine: an O(1) answered-pair probe. The single engine implements it; the
// lock-free planning path is gated on it (and on PlanSnapshot returning
// non-nil), so batch engines simply keep the locked path.
type answerChecker interface {
	HasAnswer(w WorkerID, t TaskID) bool
}

// PublishedParams is an immutable copy of an engine's read state, produced
// by Engine.Publish and published to lock-free readers through an atomic
// pointer swap. Once published it must never be mutated.
type PublishedParams struct {
	// Result is the dense inference over all tasks known at publish time.
	Result *Result
	// PI holds each worker's estimated quality P(i_w = 1), dense order.
	PI []float64
	// PDW holds each worker's distance-sensitivity multinomial, dense order.
	PDW [][]float64
}

// newAssigner builds the configured assignment strategy. Every assigner in
// the assign package supports planner-level pair exclusion, which the
// pending-dedup contract relies on.
func newAssigner(kind AssignerKind, tasks []Task, seed int64) (assign.ExcludingAssigner, error) {
	switch kind {
	case AssignerAccOpt:
		return assign.NewPlanner(), nil
	case AssignerSpatialFirst:
		return assign.NewSpatialFirst(tasks), nil
	case AssignerRandom:
		return assign.Random{Rand: rand.New(rand.NewSource(seed))}, nil
	case AssignerEntropy:
		return assign.EntropyFirst{}, nil
	case AssignerMarginalGreedy:
		return assign.NewMarginalPlanner(), nil
	}
	return nil, fmt.Errorf("poilabel: unknown assigner kind %d", kind)
}

// singleEngine backs a Service with one core.Model — the paper's framework
// path: incremental EM per answer, full EM on demand.
type singleEngine struct {
	m   *core.Model
	asg assign.ExcludingAssigner
}

func newSingleEngine(tasks []Task, workers []Worker, norm geo.Normalizer, cfg core.Config, asgKind AssignerKind, seed int64) (*singleEngine, error) {
	m, err := core.NewModel(tasks, workers, norm, cfg)
	if err != nil {
		return nil, err
	}
	asg, err := newAssigner(asgKind, tasks, seed)
	if err != nil {
		return nil, err
	}
	return &singleEngine{m: m, asg: asg}, nil
}

func (e *singleEngine) Name() string           { return "single" }
func (e *singleEngine) Observe(a Answer) error { return e.m.Observe(a) }
func (e *singleEngine) Learn(a Answer) error   { return e.m.Update(a) }

func (e *singleEngine) Fit(ctx context.Context) (bool, error) {
	st, err := e.m.FitContext(ctx)
	return st.Converged, err
}

func (e *singleEngine) Result() *Result { return e.m.Result() }

func (e *singleEngine) Assign(workers []WorkerID, h, budget int, skip func(WorkerID, TaskID) bool) map[WorkerID][]TaskID {
	if h <= 0 || budget == 0 {
		return map[WorkerID][]TaskID{}
	}
	return assign.Trim(e.asg.AssignExcluding(e.m, workers, h, skip), budget)
}

func (e *singleEngine) AddTask(t Task) error {
	if err := e.m.AddTask(t); err != nil {
		return err
	}
	// SpatialFirst holds a grid index over task locations frozen at
	// construction; rebuild it so the new task is discoverable. The other
	// assigners read m.Tasks() directly and need nothing.
	if _, ok := e.asg.(*assign.SpatialFirst); ok {
		e.asg = assign.NewSpatialFirst(e.m.Tasks())
	}
	return nil
}
func (e *singleEngine) AddWorker(w Worker) error         { return e.m.AddWorker(w) }
func (e *singleEngine) TotalAnswers() int                { return e.m.Answers().Len() }
func (e *singleEngine) WorkerQuality(w WorkerID) float64 { return e.m.WorkerQuality(w) }
func (e *singleEngine) DistanceSensitivity(w WorkerID) []float64 {
	return append([]float64(nil), e.m.Params().PDW[w]...)
}

func (e *singleEngine) Publish() *PublishedParams {
	res, pi, pdw := e.m.Publish()
	return &PublishedParams{Result: res, PI: pi, PDW: pdw}
}

func (e *singleEngine) PlanSnapshot() *assign.Snapshot { return assign.SnapshotModel(e.m) }

func (e *singleEngine) HasAnswer(w WorkerID, t TaskID) bool { return e.m.HasAnswer(w, t) }

// Model exposes the underlying inference model (Framework compatibility and
// advanced inspection).
func (e *singleEngine) Model() *core.Model { return e.m }

// shardedEngine backs a Service with one city's geo-sharded fitter and its
// budget-balancing coordinator.
type shardedEngine struct {
	sh        *shard.Sharded
	co        *shard.Coordinator
	lastStats ShardFitStats
}

func newShardedEngine(tasks []Task, workers []Worker, norm geo.Normalizer, cfg shard.Config) (*shardedEngine, error) {
	sh, err := shard.New(tasks, workers, norm, cfg)
	if err != nil {
		return nil, err
	}
	return newShardedEngineFrom(sh), nil
}

// newShardedEngineWithLayout builds a sharded engine over an explicit task
// partition instead of the kd default — the restore path for snapshots whose
// layout has diverged from the kd construction through elastic migrations.
func newShardedEngineWithLayout(tasks []Task, workers []Worker, norm geo.Normalizer, cfg shard.Config, layout [][]int) (*shardedEngine, error) {
	sh, err := shard.NewWithLayout(tasks, workers, norm, cfg, layout)
	if err != nil {
		return nil, err
	}
	return newShardedEngineFrom(sh), nil
}

// newShardedEngineFrom wraps an already-built fitter — the migration swap
// path, where the fitter was rebuilt off-lock by shard.Rebuild.
func newShardedEngineFrom(sh *shard.Sharded) *shardedEngine {
	return &shardedEngine{sh: sh, co: shard.NewCoordinator(sh)}
}

func (e *shardedEngine) Name() string           { return "sharded" }
func (e *shardedEngine) Observe(a Answer) error { return e.sh.Observe(a) }
func (e *shardedEngine) Learn(a Answer) error   { return e.sh.Observe(a) }

func (e *shardedEngine) Fit(ctx context.Context) (bool, error) {
	st, err := e.sh.FitContext(ctx)
	e.lastStats = st
	return st.Converged, err
}

func (e *shardedEngine) Result() *Result { return e.sh.Result() }

func (e *shardedEngine) Assign(workers []WorkerID, h, budget int, skip func(WorkerID, TaskID) bool) map[WorkerID][]TaskID {
	return e.co.AssignExcluding(workers, h, budget, skip)
}

func (e *shardedEngine) AddTask(t Task) error             { return e.sh.AddTask(t) }
func (e *shardedEngine) AddWorker(w Worker) error         { return e.sh.AddWorker(w) }
func (e *shardedEngine) TotalAnswers() int                { return e.sh.TotalAnswers() }
func (e *shardedEngine) WorkerQuality(w WorkerID) float64 { return e.sh.WorkerQuality(w) }
func (e *shardedEngine) DistanceSensitivity(w WorkerID) []float64 {
	return e.sh.DistanceSensitivity(w)
}

func (e *shardedEngine) Publish() *PublishedParams {
	res, pi, pdw := e.sh.Publish()
	return &PublishedParams{Result: res, PI: pi, PDW: pdw}
}

// PlanSnapshot returns nil: sharded planning spans per-shard models behind
// the coordinator's budget balancing, which has no immutable-view capture
// yet; RequestTasks keeps the locked path.
func (e *shardedEngine) PlanSnapshot() *assign.Snapshot { return nil }

// federatedEngine backs a Service with per-city sharded instances behind the
// federation router.
type federatedEngine struct {
	fed *federation.Federation
}

func newFederatedEngine(tasks []Task, workers []Worker, norm geo.Normalizer, cfg federation.Config) (*federatedEngine, error) {
	fed, err := federation.New(tasks, workers, norm, cfg)
	if err != nil {
		return nil, err
	}
	return &federatedEngine{fed: fed}, nil
}

func (e *federatedEngine) Name() string           { return "federated" }
func (e *federatedEngine) Observe(a Answer) error { return e.fed.Observe(a) }
func (e *federatedEngine) Learn(a Answer) error   { return e.fed.Observe(a) }

func (e *federatedEngine) Fit(ctx context.Context) (bool, error) {
	st, err := e.fed.FitContext(ctx)
	return st.Converged, err
}

func (e *federatedEngine) Result() *Result { return e.fed.Result() }

func (e *federatedEngine) Assign(workers []WorkerID, h, budget int, skip func(WorkerID, TaskID) bool) map[WorkerID][]TaskID {
	return e.fed.Assign(workers, h, budget, skip)
}

func (e *federatedEngine) AddTask(t Task) error             { return e.fed.AddTask(t) }
func (e *federatedEngine) AddWorker(w Worker) error         { return e.fed.AddWorker(w) }
func (e *federatedEngine) TotalAnswers() int                { return e.fed.TotalAnswers() }
func (e *federatedEngine) WorkerQuality(w WorkerID) float64 { return e.fed.WorkerQuality(w) }
func (e *federatedEngine) DistanceSensitivity(w WorkerID) []float64 {
	return e.fed.DistanceSensitivity(w)
}

func (e *federatedEngine) Publish() *PublishedParams {
	res, pi, pdw := e.fed.Publish()
	return &PublishedParams{Result: res, PI: pi, PDW: pdw}
}

// PlanSnapshot returns nil: federated planning routes through per-city
// sharded instances; RequestTasks keeps the locked path.
func (e *federatedEngine) PlanSnapshot() *assign.Snapshot { return nil }
