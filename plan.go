package poilabel

import (
	"context"
	"sort"
	"sync/atomic"
	"time"

	"poilabel/internal/assign"
	"poilabel/internal/trace"
)

// maxPlanRetries bounds the optimistic-commit retry loop. Each retry
// permanently excludes the pairs that conflicted, so the loop terminates on
// its own for any finite task set; the cap is a safety valve against
// pathological contention, after which the worker simply receives the picks
// committed so far.
const maxPlanRetries = 8

// WithPlanCandidates sets K, the per-worker candidate prefix length the
// lock-free planner caches per published parameter generation (see
// assign.Candidates). Zero — the default — means
// assign.DefaultCandidatePrefix; a negative k disables candidate caching, so
// every single-worker plan scans the full improvement row. Candidates only
// apply to the single engine's AccOpt lock-free path.
func WithPlanCandidates(k int) ServiceOption {
	return func(c *serviceConfig) error {
		c.planCand = k
		return nil
	}
}

// planCounters is the Service's lock-free planning instrumentation, updated
// atomically so readers never need the service lock.
type planCounters struct {
	lockFree  atomic.Uint64 // assignment rounds planned off the write lock
	locked    atomic.Uint64 // assignment rounds planned under the write lock
	committed atomic.Uint64 // picks accepted at commit
	conflicts atomic.Uint64 // picks rejected at commit (pair taken since planning)
	retries   atomic.Uint64 // replan rounds after a conflicted commit
	lastNanos atomic.Int64  // wall-clock of the last lock-free plan+commit
}

// PlanPipelineStats is a point-in-time view of the assignment planning path,
// the backing state for the poilabel_plan_* metrics and the /healthz plan
// section. Counters cover the service's lifetime.
type PlanPipelineStats struct {
	// Enabled reports whether the lock-free planning path is configured
	// (background fitting on the single engine with a planner-based
	// assigner). Individual rounds can still fall back to the locked path —
	// e.g. for workers registered after the last publication.
	Enabled bool `json:"enabled"`
	// LockFreePlans counts assignment rounds planned against a published
	// snapshot, off the write lock.
	LockFreePlans uint64 `json:"lock_free_plans"`
	// LockedPlans counts assignment rounds planned under the write lock
	// (the only mode for batch engines and non-planner assigners).
	LockedPlans uint64 `json:"locked_plans"`
	// CommittedPicks counts (worker, task) pairs accepted at commit.
	CommittedPicks uint64 `json:"committed_picks"`
	// Conflicts counts picks rejected at commit because the pair was
	// answered or handed out between planning and commit.
	Conflicts uint64 `json:"conflicts"`
	// Retries counts replan rounds run to replace conflicted picks.
	Retries uint64 `json:"retries"`
	// ConflictRate is Conflicts / (Conflicts + CommittedPicks), the
	// fraction of planned picks that lost their optimistic race.
	ConflictRate float64 `json:"conflict_rate"`
	// LastPlanDuration is the wall-clock of the most recent lock-free
	// plan-and-commit round.
	LastPlanDuration time.Duration `json:"last_plan_duration"`
	// CandidatePrefix is the configured per-worker candidate prefix K
	// (0 when candidate caching is disabled).
	CandidatePrefix int `json:"candidate_prefix"`
	// Candidates holds the candidate index counters (zero value when
	// caching is disabled).
	Candidates assign.CandidateStats `json:"candidates"`
}

// PlanStats reports the assignment planning path's current state.
func (s *Service) PlanStats() PlanPipelineStats {
	st := PlanPipelineStats{
		Enabled:          s.planEnabled,
		LockFreePlans:    s.planStats.lockFree.Load(),
		LockedPlans:      s.planStats.locked.Load(),
		CommittedPicks:   s.planStats.committed.Load(),
		Conflicts:        s.planStats.conflicts.Load(),
		Retries:          s.planStats.retries.Load(),
		LastPlanDuration: time.Duration(s.planStats.lastNanos.Load()),
	}
	if total := st.Conflicts + st.CommittedPicks; total > 0 {
		st.ConflictRate = float64(st.Conflicts) / float64(total)
	}
	if s.cands != nil {
		st.CandidatePrefix = s.cands.Prefix()
		st.Candidates = s.cands.Stats()
	}
	return st
}

// warmPlanCandidates pre-builds the recently active workers' candidate
// lists against the just-published generation so their next request scans a
// warm list instead of paying the O(|T| log K) build on the request path.
// The fit pipeline calls it right after a publication, from the background
// goroutine with no lock held.
func (s *Service) warmPlanCandidates() {
	if s.cands == nil {
		return
	}
	pub := s.published.Load()
	if pub == nil || pub.plan == nil {
		return
	}
	s.cands.Warm(pub.plan, pub.gen)
}

// planContext carries the state the lock-free path captures under the read
// lock: the generation to plan against, the live exclusions at capture time,
// the ID tables for translating the result, and the request shape.
type planContext struct {
	pub       *paramGen
	skipSet   map[pairKey]struct{}
	taskKeys  []string
	workerKey []string
	observer  Observer
	h         int
	epoch     uint64 // restoreEpoch at capture; a moved epoch aborts the commit
}

// planWorkers plans h tasks per worker against the immutable snapshot, with
// no service lock held. Single-worker rounds go through the candidate index
// when it is enabled (the serving hot path: HTTP /assignments requests carry
// one worker); everything else runs a pooled planner over the snapshot.
func (s *Service) planWorkers(snap *assign.Snapshot, gen uint64, ws []WorkerID, h int, skip assign.SkipFunc) map[WorkerID][]TaskID {
	if len(ws) == 1 && s.cands != nil {
		picks, _ := s.cands.PlanWorker(snap, gen, ws[0], h, skip)
		if len(picks) == 0 {
			return map[WorkerID][]TaskID{}
		}
		return map[WorkerID][]TaskID{ws[0]: picks}
	}
	pl := s.planPool.Get().(*assign.Planner)
	defer s.planPool.Put(pl)
	return pl.AssignExcluding(snap, ws, h, skip)
}

// requestTasksLockFree is RequestTasks' snapshot-planning path: plan against
// the published generation with no lock, then validate the picks in a short
// optimistic commit under the write lock, replanning conflicted picks with a
// grown exclusion set instead of starting over. See docs/ARCHITECTURE.md
// ("Life of an assignment").
func (s *Service) requestTasksLockFree(ctx context.Context, ws []WorkerID, pc *planContext) (map[string][]string, error) {
	start := time.Now()
	snap := pc.pub.plan
	var dedupHits atomic.Int64
	skip := func(w WorkerID, t TaskID) bool {
		if _, ok := pc.skipSet[pairKey{w, t}]; ok {
			dedupHits.Add(1)
			return true
		}
		return false
	}

	accepted := make(map[WorkerID][]TaskID, len(ws))
	// The candidate-scan phase: plan every requested worker against the
	// immutable snapshot, no lock held.
	_, planSp := trace.Start(ctx, "plan.plan")
	plans := s.planWorkers(snap, pc.pub.gen, ws, pc.h, skip)
	planSp.End()
	var totalConflicts, retries int64
	for attempt := 0; ; attempt++ {
		_, commitSp := trace.Start(ctx, "plan.commit")
		conflicts, exhausted, stale := s.commitPlans(plans, accepted, pc.epoch)
		commitSp.AttrInt("conflicts", int64(len(conflicts)))
		commitSp.End()
		if len(conflicts) > 0 {
			s.planStats.conflicts.Add(uint64(len(conflicts)))
			totalConflicts += int64(len(conflicts))
		}
		if stale || len(conflicts) == 0 || exhausted || attempt >= maxPlanRetries {
			break
		}
		s.planStats.retries.Add(1)
		retries++
		// A conflicted pair is answered or pending on the live state; it can
		// never become assignable again, so excluding it permanently keeps
		// the retry loop shrinking. Pairs we committed ourselves entered the
		// live pending set after our skip capture — exclude them explicitly
		// too so replans cannot propose them twice.
		_, replanSp := trace.Start(ctx, "plan.replan")
		need := make(map[WorkerID]int, len(conflicts))
		for _, pk := range conflicts {
			pc.skipSet[pk] = struct{}{}
			need[pk.w]++
		}
		for w, ts := range accepted {
			for _, t := range ts {
				pc.skipSet[pairKey{w, t}] = struct{}{}
			}
		}
		plans = make(map[WorkerID][]TaskID, len(need))
		for w, n := range need {
			repl := s.planWorkers(snap, pc.pub.gen, []WorkerID{w}, n, skip)
			if ts := repl[w]; len(ts) > 0 {
				plans[w] = ts
			}
		}
		replanSp.End()
		if len(plans) == 0 {
			break
		}
	}

	s.planStats.lockFree.Add(1)
	s.planStats.lastNanos.Store(time.Since(start).Nanoseconds())
	if sp := trace.FromContext(ctx); sp != nil {
		var committed int64
		for _, ts := range accepted {
			committed += int64(len(ts))
		}
		sp.AttrInt("committed", committed)
		sp.AttrInt("conflicts", totalConflicts)
		sp.AttrInt("retries", retries)
	}
	if pc.observer != nil {
		if n := dedupHits.Load(); n > 0 {
			pc.observer.DedupHitsObserved(int(n))
		}
	}
	out := make(map[string][]string, len(accepted))
	for w, ts := range accepted {
		if len(ts) == 0 {
			continue
		}
		ids := make([]string, len(ts))
		for i, t := range ts {
			ids[i] = pc.taskKeys[t]
		}
		out[pc.workerKey[w]] = ids
	}
	return out, nil
}

// commitPlans validates planned picks against the live pending set, answer
// log, and budget under the write lock, accepting survivors in assign.Trim
// order (round-robin over ascending worker IDs) so budget trimming is
// byte-identical to the locked path. Accepted picks are marked pending and
// spend budget immediately; conflicted picks — pairs answered or handed out
// since planning — are returned for the caller's retry loop. exhausted
// reports that the budget ran out mid-commit, which ends the round exactly
// like assign.Trim cutting a plan short. stale reports that a Restore
// replaced the service state since planning; the plan's dense indices no
// longer refer to the live state, so nothing was committed.
func (s *Service) commitPlans(plans map[WorkerID][]TaskID, accepted map[WorkerID][]TaskID, epoch uint64) (conflicts []pairKey, exhausted, stale bool) {
	if len(plans) == 0 {
		return nil, false, false
	}
	order := make([]int, 0, len(plans))
	for w := range plans {
		order = append(order, int(w))
	}
	sort.Ints(order)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.restoreEpoch != epoch {
		return nil, false, true
	}
	checker, _ := s.eng.(answerChecker)
	for round := 0; ; round++ {
		progressed := false
		for _, wi := range order {
			w := WorkerID(wi)
			ts := plans[w]
			if round >= len(ts) {
				continue
			}
			progressed = true
			if s.cfg.budget == 0 {
				return conflicts, true, false
			}
			t := ts[round]
			pk := pairKey{w, t}
			if s.pending[pk] || (checker != nil && checker.HasAnswer(w, t)) {
				conflicts = append(conflicts, pk)
				continue
			}
			s.pending[pk] = true
			accepted[w] = append(accepted[w], t)
			s.planStats.committed.Add(1)
			if s.cfg.budget > 0 {
				s.cfg.budget--
			}
		}
		if !progressed {
			return conflicts, false, false
		}
	}
}
