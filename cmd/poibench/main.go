// Command poibench regenerates the paper's tables and figures.
//
// Usage:
//
//	poibench [-seed N] [-shards K] [-list] [-json dir] [-checkperf dir [-perftol F]] <experiment-id>... | all
//
// Each experiment id corresponds to one table or figure of the paper's
// evaluation section (fig6..fig14, table1, table2), an ablation study
// (ablation-alpha, ablation-funcset, ablation-update, ablation-greedy, ...),
// or an extension scenario such as sharded (single model vs K geographic
// shards on the Fig13 workload; -shards sets K). Output is the same
// rows/series the paper reports, as aligned text tables.
//
// With -json dir, poibench instead (or additionally) runs the tracked
// hot-path sweeps and writes dir/BENCH_inference.json and
// dir/BENCH_assign.json — the perf-trajectory baselines described in
// PERFORMANCE.md. With -checkperf dir, it reruns the smallest sweep points
// and fails if a hot path regressed more than -perftol (default 25%) versus
// the baselines in dir — the CI bench-regression gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"poilabel/internal/experiment"
)

func main() {
	seed := flag.Int64("seed", 7, "scenario seed (population and answers)")
	list := flag.Bool("list", false, "list available experiment ids and exit")
	outDir := flag.String("out", "", "also write each experiment's output to <dir>/<id>.txt")
	jsonDir := flag.String("json", "", "run the tracked perf sweeps and write BENCH_*.json to <dir>")
	shards := flag.Int("shards", 0, "shard count for the 'sharded' experiment (0 = default)")
	checkDir := flag.String("checkperf", "", "rerun the S-size perf sweeps and fail if a hot path regressed vs the BENCH_*.json baselines in <dir>")
	perfTol := flag.Float64("perftol", 0.25, "allowed fractional regression for -checkperf (0.25 = 25%)")
	snapBench := flag.Bool("snapbench", false, "measure snapshot encode/decode throughput on the L-size Fig13 workload")
	flag.Usage = usage
	flag.Parse()

	if *shards > 0 {
		experiment.ShardCount = *shards
	}

	reg := experiment.Registry()
	if *list {
		for _, id := range experiment.IDs() {
			fmt.Println(id)
		}
		return
	}

	if *checkDir != "" {
		if err := checkPerf(*checkDir, *seed, *perfTol); err != nil {
			fmt.Fprintf(os.Stderr, "poibench: %v\n", err)
			os.Exit(1)
		}
		if flag.NArg() == 0 && *jsonDir == "" && !*snapBench {
			return
		}
	}

	if *jsonDir != "" {
		if err := writePerfReports(*jsonDir, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "poibench: %v\n", err)
			os.Exit(1)
		}
		if flag.NArg() == 0 && !*snapBench {
			return
		}
	}

	if *snapBench {
		out, err := experiment.RunSnapshotBench(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "poibench: snapbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(out)
		if flag.NArg() == 0 {
			return
		}
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = experiment.IDs()
		// table2 output is included in fig11; skip the duplicate.
		args = remove(args, "table2")
	}

	failed := false
	for _, id := range args {
		run, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "poibench: unknown experiment %q (use -list)\n", id)
			failed = true
			continue
		}
		start := time.Now()
		res, err := run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "poibench: %s: %v\n", id, err)
			failed = true
			continue
		}
		out := fmt.Sprintf("### %s (seed %d, %s)\n\n%s\n", id, *seed, time.Since(start).Round(time.Millisecond), res)
		fmt.Print(out)
		if *outDir != "" {
			if err := writeOutput(*outDir, id, out); err != nil {
				fmt.Fprintf(os.Stderr, "poibench: %v\n", err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: poibench [-seed N] [-shards K] [-json dir] [-checkperf dir] <experiment-id>... | all

Regenerates the evaluation tables and figures of "Crowdsourced POI
Labelling: Location-Aware Result Inference and Task Assignment" (ICDE'16).

Experiments:
`)
	for _, id := range experiment.IDs() {
		fmt.Fprintf(os.Stderr, "  %s\n", id)
	}
}

// writePerfReports runs the tracked inference and assignment sweeps and
// stores them as BENCH_inference.json / BENCH_assign.json under dir.
func writePerfReports(dir string, seed int64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create perf output dir: %w", err)
	}
	for _, run := range []struct {
		name string
		fn   func(int64) (*experiment.PerfReport, error)
	}{
		{"BENCH_inference.json", experiment.RunPerfInference},
		{"BENCH_assign.json", experiment.RunPerfAssign},
	} {
		start := time.Now()
		r, err := run.fn(seed)
		if err != nil {
			return fmt.Errorf("%s: %w", run.name, err)
		}
		path := filepath.Join(dir, run.name)
		if err := r.WriteFile(path); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%s)\n", path, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// writeOutput stores one experiment's rendered output under dir.
func writeOutput(dir, id, out string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	path := filepath.Join(dir, id+".txt")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}

func remove(xs []string, x string) []string {
	out := xs[:0]
	for _, v := range xs {
		if v != x {
			out = append(out, v)
		}
	}
	return out
}
