package main

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"

	"poilabel/internal/experiment"
)

// checkPerf is the CI bench-regression gate: it reruns the smallest (S)
// point of each tracked perf sweep under the same environments as the full
// reports and compares the measurements against the committed BENCH_*.json
// baselines in dir, failing when any hot path (full-EM inference, AccOpt
// assignment) is slower than baseline by more than tol (fractional; 0.25
// allows a 25% regression).
//
// Wall-clock numbers only mean something within a matching environment —
// PERFORMANCE.md's own rule — so a baseline whose OS, arch, CPU count, or
// seed differs from this run is reported and skipped rather than compared;
// on such hosts the step degrades to a smoke run of the sweeps. The gate
// bites on the reference machine (where the baselines are regenerated) and
// on any runner matching its recorded environment.
// seriesTol widens the gate for series whose absolute scale makes the
// default tolerance meaningless. The warm plan path reuses the published
// snapshot's candidate plan, so its S point runs in microseconds — scheduler
// jitter alone swings it far past the default 25% — but a genuine loss of
// the lock-free fast path (falling back to a cold rebuild) is a >100×
// cliff, which the 3× ceiling still catches.
var seriesTol = map[string]float64{
	"plan_warm_ms_by_tasks": 2.0, // fail only beyond 3× baseline
	// Per-span overhead is tens of nanoseconds: scheduler jitter swings it,
	// but the regressions worth catching (a lock added to the mint path, an
	// allocation per span) are multiples, not percents.
	"trace_span_overhead_ns": 1.0, // fail only beyond 2× baseline
}

func checkPerf(dir string, seed int64, tol float64) error {
	start := time.Now()
	smokes, err := experiment.RunPerfSmoke(seed)
	if err != nil {
		return fmt.Errorf("checkperf: %w", err)
	}
	var failures []string
	for _, smoke := range smokes {
		path := filepath.Join(dir, "BENCH_"+smoke.Name+".json")
		base, err := experiment.ReadPerfReport(path)
		if err != nil {
			return fmt.Errorf("checkperf: %w", err)
		}
		if base.GOOS != smoke.GOOS || base.GOARCH != smoke.GOARCH ||
			base.NumCPU != smoke.NumCPU || base.Seed != smoke.Seed {
			fmt.Printf("checkperf: %s baseline env %s/%s %dcpu seed %d != this run %s/%s %dcpu seed %d — sweeps ran, comparison skipped\n",
				smoke.Name, base.GOOS, base.GOARCH, base.NumCPU, base.Seed,
				smoke.GOOS, smoke.GOARCH, smoke.NumCPU, smoke.Seed)
			continue
		}
		for _, s := range smoke.Series {
			bs := base.FindSeries(s.Label)
			if bs == nil {
				return fmt.Errorf("checkperf: baseline %s has no series %q", path, s.Label)
			}
			stol := tol
			if t, ok := seriesTol[s.Label]; ok && t > stol {
				stol = t
			}
			for i, x := range s.X {
				baseY, ok := bs.At(x)
				if !ok {
					return fmt.Errorf("checkperf: baseline series %q has no point x=%d", s.Label, x)
				}
				got := s.Y[i]
				ratio := got / baseY
				verdict := "ok"
				if ratio > 1+stol {
					verdict = "FAIL"
					failures = append(failures, fmt.Sprintf(
						"%s %s@%d: %.4g vs baseline %.4g (%+.0f%%, tolerance %+.0f%%)",
						smoke.Name, s.Label, x, got, baseY, 100*(ratio-1), 100*stol))
				}
				fmt.Printf("checkperf: %-4s %s %s@%d: %.4g vs baseline %.4g (%+.0f%%)\n",
					verdict, smoke.Name, s.Label, x, got, baseY, 100*(ratio-1))
			}
		}
	}
	fmt.Printf("checkperf: done in %s\n", time.Since(start).Round(time.Millisecond))
	if len(failures) > 0 {
		return fmt.Errorf("perf regression:\n  %s", strings.Join(failures, "\n  "))
	}
	return nil
}
