// Command poiserve runs the poilabel Service as an HTTP/JSON server — the
// system's front door for driving it as an actual service.
//
// Usage:
//
//	poiserve [-addr :8080] [-engine single|sharded|federated]
//	         [-shards K] [-cities N] [-budget N] [-h N]
//	         [-assigner accopt|marginal|sf|entropy|random]
//	         [-fullem N] [-bg-fit D [-bg-min-answers N] [-plan-candidates K]]
//	         [-elastic [-elastic-check D] [-elastic-split R] [-elastic-merge R]
//	          [-elastic-max K] [-elastic-min-answers N]]
//	         [-demo N] [-demo-tasks N] [-seed N]
//	         [-checkpoint path [-checkpoint-interval D]] [-restore path]
//	         [-shutdown-timeout D]
//	         [-trace [-trace-slow D]] [-debug-addr :6060]
//
// With -trace every request, background fit, and migration records a span
// tree: recent traces are kept in a ring served on GET /debug/traces (filter
// with ?slow=1, ?min_ms=, ?name=), slow and errored traces are always kept,
// responses carry X-Poilabel-Trace IDs (client-supplied IDs are adopted, so
// cmd/poiload can join its latency outliers with server-side span trees),
// and /metrics grows the poilabel_trace_* families. With -debug-addr the
// full net/http/pprof surface is mounted on a second listener and /metrics
// grows poiserve_go_* runtime gauges (goroutines, live heap, GC pause).
//
// With -bg-fit D full EM fits leave the request path entirely: a background
// pipeline fits over a copy-on-write snapshot at most every D (eagerly once
// -bg-min-answers have queued) and swaps the parameters in atomically, so
// /results and /assignments latency is bounded by the hardware, not by EM
// convergence. /results responses carry X-Poilabel-Generation and
// X-Poilabel-Staleness-Seconds headers, and /healthz grows a "fit" section.
// On shutdown the pipeline drains — outstanding answers are folded into one
// final generation — before the final checkpoint is written.
//
// With -bg-fit on the single engine and the accopt assigner, assignment
// planning also leaves the write lock: /assignments plans against the last
// published snapshot (per-worker candidate lists, -plan-candidates K) and
// only takes the lock for a short optimistic commit. /healthz grows a
// "plan" section with conflict/retry counters and the last plan latency.
//
// With -elastic (requires -engine sharded and -bg-fit) the shard layout
// becomes drift-aware: a detector watches per-shard answer traffic every
// -elastic-check and re-partitions live — splitting a shard whose window
// share exceeds -elastic-split times the mean (up to -elastic-max shards),
// or merging the coldest shard into its nearest neighbor when their combined
// share falls below -elastic-merge times the mean. Migrations run on the
// background fit pipeline and never drop an acknowledged answer. /healthz
// grows an "elastic" section and /metrics the poilabel_shard_* and
// poilabel_elastic_* families.
//
// The server starts empty: register tasks and workers over HTTP, stream
// answers, request assignments, and read results (see internal/serve for
// the endpoint list, GET /healthz for liveness, or GET /metrics for
// Prometheus counters and latency summaries). With -demo N a deterministic
// synthetic world — the Beijing dataset of the reproduction experiments
// plus N simulated workers, or a -demo-tasks sized synthetic city — is
// pre-registered so the server is immediately usable (and so cmd/poiload,
// given the same seed, can regenerate the identical world client-side):
//
//	poiserve -demo 30 -engine sharded -shards 4 &
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/assignments -d '{"workers":["w0","w1"]}'
//
// poiserve shuts down gracefully on SIGTERM/SIGINT: the listener closes,
// in-flight requests drain for up to -shutdown-timeout, and with
// -checkpoint a final snapshot is written after the drain, so a rolling
// restart with -restore loses nothing that was ever acknowledged.
//
// With -checkpoint the server persists its full learned state to the given
// file on POST /checkpoint (and, with -checkpoint-interval, periodically);
// writes are atomic write-then-rename. A restarted server passes -restore
// with the same engine flags to resume exactly where the snapshot left off
// — identical results, assignment plans, and remaining budget:
//
//	poiserve -demo 30 -checkpoint /var/lib/poi.snap -checkpoint-interval 30s &
//	curl -s -X POST localhost:8080/checkpoint
//	kill %1 && poiserve -restore /var/lib/poi.snap &
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"poilabel"
	"poilabel/internal/crowd"
	"poilabel/internal/metrics"
	"poilabel/internal/serve"
	"poilabel/internal/trace"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	engine := flag.String("engine", "single", "engine: single, sharded, or federated")
	shards := flag.Int("shards", 0, "geographic shards per city (sharded/federated engines; 0 = default)")
	cities := flag.Int("cities", 0, "city partitions (federated engine; 0 = default)")
	budget := flag.Int("budget", -1, "total assignment budget (-1 = unlimited)")
	h := flag.Int("h", 2, "tasks handed to each requesting worker")
	assigner := flag.String("assigner", "accopt", "single-engine assigner: accopt, marginal, sf, entropy, or random")
	fullEM := flag.Int("fullem", 100, "answers between automatic full fits (0 = explicit fits only; ignored with -bg-fit)")
	bgFit := flag.Duration("bg-fit", 0, "background fit cadence; fits run off the request path over a snapshot (0 = synchronous fits)")
	bgMin := flag.Int("bg-min-answers", 256, "answers that trigger an eager background fit before the cadence tick (needs -bg-fit)")
	planCand := flag.Int("plan-candidates", 0, "per-worker candidate prefix K for lock-free planning (0 = default, negative = disable caching; needs -bg-fit with the single engine and accopt)")
	elastic := flag.Bool("elastic", false, "drift-aware elastic re-sharding: split hot shards, merge cold ones, migrate live (needs -engine sharded and -bg-fit)")
	elasticCheck := flag.Duration("elastic-check", 5*time.Second, "drift-detector tick (needs -elastic; 0 = detector off, migrations only via tests)")
	elasticSplit := flag.Float64("elastic-split", 0, "split a shard whose window answer share is at least this multiple of the per-shard mean (0 = default 2)")
	elasticMerge := flag.Float64("elastic-merge", 0, "merge the coldest shard when its pair's combined share is at most this multiple of the mean (0 = default 0.5)")
	elasticMax := flag.Int("elastic-max", 0, "shard-count ceiling for splits (0 = default 16)")
	elasticMinAns := flag.Int("elastic-min-answers", 0, "answers a detector window must hold before acting (0 = default 32)")
	demo := flag.Int("demo", 0, "pre-register a synthetic demo world with N workers (0 = start empty)")
	demoTasks := flag.Int("demo-tasks", 0, "demo world task count (0 = the 200-POI Beijing dataset; needs -demo)")
	seed := flag.Int64("seed", 7, "demo world / random assigner seed")
	ckpt := flag.String("checkpoint", "", "snapshot file enabling POST /checkpoint (empty = disabled)")
	ckptEvery := flag.Duration("checkpoint-interval", 0, "also auto-checkpoint at this interval (0 = manual only; needs -checkpoint)")
	restore := flag.String("restore", "", "restore state from this snapshot file at startup (engine flags must match)")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "in-flight request drain budget on SIGTERM/SIGINT (0 = wait indefinitely)")
	traceOn := flag.Bool("trace", false, "request-scoped tracing: span trees on GET /debug/traces, IDs via X-Poilabel-Trace, poilabel_trace_* metrics")
	traceSlow := flag.Duration("trace-slow", 100*time.Millisecond, "root duration at or above which a trace is kept in the always-keep slow ring (needs -trace)")
	debugAddr := flag.String("debug-addr", "", "also serve net/http/pprof and runtime gauges on this address (empty = off)")
	flag.Parse()

	var elasticCfg *poilabel.ElasticConfig
	if *elastic {
		elasticCfg = &poilabel.ElasticConfig{
			CheckInterval: *elasticCheck,
			SplitRatio:    *elasticSplit,
			MergeRatio:    *elasticMerge,
			MaxShards:     *elasticMax,
			MinAnswers:    *elasticMinAns,
		}
	}

	var traceCfg *trace.Config
	if *traceOn {
		// A serving ring deeper than the library default: at a few thousand
		// requests/sec the default 256 recycles in a tenth of a second, too
		// fast for a client (or a human with curl) to catch an outlier it
		// just saw. 2048 keeps roughly a second of busy traffic inspectable
		// for a few MB of retained traces.
		traceCfg = &trace.Config{SlowThreshold: *traceSlow, RingSize: 2048}
	}

	if err := run(*addr, *engine, *shards, *cities, *budget, *h, *assigner, *fullEM, *bgFit, *bgMin, *planCand, elasticCfg, *demo, *demoTasks, *seed,
		*ckpt, *ckptEvery, *restore, *shutdownTimeout, traceCfg, *debugAddr); err != nil {
		fmt.Fprintf(os.Stderr, "poiserve: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, engine string, shards, cities, budget, h int, assigner string, fullEM int, bgFit time.Duration, bgMin, planCand int, elastic *poilabel.ElasticConfig, demo, demoTasks int, seed int64,
	ckptPath string, ckptEvery time.Duration, restorePath string, shutdownTimeout time.Duration, traceCfg *trace.Config, debugAddr string) error {
	var tracer *trace.Tracer
	if traceCfg != nil {
		tracer = trace.New(*traceCfg)
	}
	opts := []poilabel.ServiceOption{
		poilabel.WithBudget(budget),
		poilabel.WithTasksPerRequest(h),
		poilabel.WithFullEMInterval(fullEM),
		poilabel.WithSeed(seed),
		poilabel.WithShards(shards),
		poilabel.WithCities(cities),
		poilabel.WithPlanCandidates(planCand),
	}
	if bgFit > 0 {
		opts = append(opts, poilabel.WithBackgroundFit(bgFit, bgMin))
	}
	if elastic != nil {
		opts = append(opts, poilabel.WithElasticShards(*elastic))
	}
	if tracer != nil {
		opts = append(opts, poilabel.WithTracer(tracer))
	}
	switch engine {
	case "single":
		opts = append(opts, poilabel.WithEngine(poilabel.EngineSingle))
	case "sharded":
		opts = append(opts, poilabel.WithEngine(poilabel.EngineSharded))
	case "federated":
		opts = append(opts, poilabel.WithEngine(poilabel.EngineFederated))
	default:
		return fmt.Errorf("unknown engine %q (want single, sharded, or federated)", engine)
	}
	switch assigner {
	case "accopt":
		opts = append(opts, poilabel.WithAssigner(poilabel.AssignerAccOpt))
	case "marginal":
		opts = append(opts, poilabel.WithAssigner(poilabel.AssignerMarginalGreedy))
	case "sf":
		opts = append(opts, poilabel.WithAssigner(poilabel.AssignerSpatialFirst))
	case "entropy":
		opts = append(opts, poilabel.WithAssigner(poilabel.AssignerEntropy))
	case "random":
		opts = append(opts, poilabel.WithAssigner(poilabel.AssignerRandom))
	default:
		return fmt.Errorf("unknown assigner %q (want accopt, marginal, sf, entropy, or random)", assigner)
	}

	if ckptEvery > 0 && ckptPath == "" {
		return fmt.Errorf("-checkpoint-interval needs -checkpoint")
	}

	svc, err := poilabel.NewService(opts...)
	if err != nil {
		return err
	}
	switch {
	case restorePath != "":
		if err := svc.LoadCheckpoint(restorePath); err != nil {
			return err
		}
		if demo > 0 {
			log.Printf("-restore given; skipping -demo seeding")
		}
		log.Printf("restored %s: %d tasks, %d workers, budget %d",
			restorePath, svc.NumTasks(), svc.NumWorkers(), svc.RemainingBudget())
	case demo > 0:
		if err := seedDemoWorld(svc, demoTasks, demo, seed); err != nil {
			return err
		}
		log.Printf("demo world registered: %d tasks, %d workers", svc.NumTasks(), svc.NumWorkers())
	}

	// Graceful shutdown: SIGTERM/SIGINT closes the listener, drains
	// in-flight requests, and (with -checkpoint) writes a final snapshot.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var serveOpts []serve.Option
	var ck *serve.Checkpointer
	if ckptPath != "" {
		ck = serve.NewCheckpointer(svc, ckptPath)
		serveOpts = append(serveOpts, serve.WithCheckpointer(ck))
		if ckptEvery > 0 {
			go ck.Run(ctx, ckptEvery)
			log.Printf("auto-checkpointing to %s every %s", ckptPath, ckptEvery)
		}
	}
	reg := metrics.NewRegistry()
	serveOpts = append(serveOpts, serve.WithMetrics(serve.NewMetrics(reg, svc)))
	if tracer != nil {
		tracer.RegisterMetrics(reg)
		serveOpts = append(serveOpts, serve.WithTracer(tracer))
		log.Printf("tracing on: GET /debug/traces, slow threshold %s", tracer.SlowThreshold())
	}
	if debugAddr != "" {
		serve.RegisterRuntimeMetrics(reg)
		go func() {
			log.Printf("debug server (pprof) listening on %s", debugAddr)
			if err := http.ListenAndServe(debugAddr, serve.DebugHandler()); err != nil {
				log.Printf("debug server: %v", err)
			}
		}()
	}

	log.Printf("poiserve listening on %s (engine %s, budget %d, h %d)", addr, engine, budget, h)
	err = serve.ListenAndServe(ctx, addr, serve.NewHandler(svc, serveOpts...), shutdownTimeout, ck, svc.Close)
	if err == nil {
		log.Printf("poiserve: drained and stopped")
	}
	return err
}

// seedDemoWorld registers the shared deterministic demo world
// (crowd.DemoWorld) so the server answers assignment and result queries out
// of the box — and so a load generator with the same seed can rebuild the
// identical world client-side. Task IDs are t0..tN-1, worker IDs w0..wM-1.
func seedDemoWorld(svc *poilabel.Service, numTasks, numWorkers int, seed int64) error {
	data, workers, _, err := crowd.DemoWorld(numTasks, numWorkers, seed)
	if err != nil {
		return err
	}
	for i, t := range data.Tasks {
		if err := svc.AddTask(fmt.Sprintf("t%d", i), poilabel.TaskSpec{
			Name:     t.Name,
			Location: t.Location,
			Labels:   t.Labels,
			Reviews:  t.Reviews,
		}); err != nil {
			return err
		}
	}
	for i, w := range workers {
		if err := svc.AddWorker(fmt.Sprintf("w%d", i), poilabel.WorkerSpec{
			Name:      w.Name,
			Locations: w.Locations,
		}); err != nil {
			return err
		}
	}
	return nil
}
