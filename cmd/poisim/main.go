// Command poisim runs the full crowdsourced POI labelling framework on a
// synthetic deployment and prints a quality report: per-assigner accuracy,
// estimated versus latent worker qualities, and a sample of inferred
// labels.
//
// Usage:
//
//	poisim [-dataset Beijing|China] [-seed N] [-budget N] [-assigner accopt|sf|random] [-shards K] [-save FILE]
//
// With -save the generated dataset is written as JSON for inspection or
// replay through the library. With -shards K (K > 1) the collected answer
// log is additionally refitted by the K-shard geo-partitioned fitter and its
// accuracy and wall-clock are reported against a single-model refit.
package main

import (
	"flag"
	"fmt"
	mrand "math/rand"
	"os"
	"time"

	"poilabel/internal/assign"
	"poilabel/internal/core"
	"poilabel/internal/crowd"
	"poilabel/internal/experiment"
	"poilabel/internal/model"
	"poilabel/internal/stats"
)

func main() {
	datasetName := flag.String("dataset", "Beijing", "dataset: Beijing or China")
	seed := flag.Int64("seed", 7, "scenario seed")
	budget := flag.Int("budget", 1000, "assignment budget")
	assigner := flag.String("assigner", "accopt", "assigner: accopt, marginal, sf, entropy, or random")
	shards := flag.Int("shards", 0, "also refit the answer log with K geographic shards and compare")
	save := flag.String("save", "", "write the generated dataset JSON to this path")
	flag.Parse()

	if err := run(*datasetName, *seed, *budget, *assigner, *shards, *save); err != nil {
		fmt.Fprintf(os.Stderr, "poisim: %v\n", err)
		os.Exit(1)
	}
}

func run(datasetName string, seed int64, budget int, assignerName string, shards int, save string) error {
	s := experiment.DefaultScenario(datasetName, seed)
	s.Budget = budget
	env, err := s.Build()
	if err != nil {
		return err
	}
	if save != "" {
		if err := env.Data.Save(save); err != nil {
			return err
		}
		fmt.Printf("dataset written to %s\n", save)
	}

	var asg assign.Assigner
	switch assignerName {
	case "accopt":
		asg = assign.AccOpt{}
	case "marginal":
		asg = assign.MarginalGreedy{}
	case "sf":
		asg = assign.NewSpatialFirst(env.Data.Tasks)
	case "entropy":
		asg = assign.EntropyFirst{}
	case "random":
		asg = assign.Random{Rand: newRand(seed + 500)}
	default:
		return fmt.Errorf("unknown assigner %q (want accopt, marginal, sf, entropy, or random)", assignerName)
	}

	m, err := env.NewModel()
	if err != nil {
		return err
	}
	plat, err := crowd.NewPlatform(env.Sim, m, core.DefaultUpdatePolicy(), budget)
	if err != nil {
		return err
	}
	consumed, err := plat.Run(asg, crowd.RunConfig{WorkersPerRound: 5, TasksPerWorker: s.H, FinalFullEM: true})
	if err != nil {
		return err
	}

	fmt.Printf("dataset %s: %v\n", env.Data.Name, env.Data.Stats())
	fmt.Printf("assigner %s: consumed %d of %d budget\n", asg.Name(), consumed, budget)
	fmt.Printf("overall accuracy: %.1f%%\n\n", 100*model.Accuracy(m.Result(), env.Data.Truth))

	if shards > 1 {
		if err := compareSharded(env, m, shards); err != nil {
			return err
		}
	}

	wt := stats.NewTable("worker quality: estimated vs latent",
		"worker", "answers", "est P(i=1)", "latent", "latent lambda")
	for i := range env.Workers {
		w := model.WorkerID(i)
		latent := "spammer"
		if env.Profiles[i].Qualified {
			latent = "qualified"
		}
		wt.AddRowf(fmt.Sprintf("w%d", i),
			m.Answers().WorkerAnswerCount(w),
			fmt.Sprintf("%.2f", m.WorkerQuality(w)),
			latent,
			fmt.Sprintf("%g", env.Profiles[i].Lambda))
	}
	fmt.Println(wt)

	res := m.Result()
	lt := stats.NewTable("sample of inferred labels (first 3 tasks)",
		"task", "label", "P(z=1)", "inferred", "truth")
	for t := 0; t < 3 && t < len(env.Data.Tasks); t++ {
		for k := range env.Data.Tasks[t].Labels {
			lt.AddRowf(env.Data.Tasks[t].Name, env.Data.Tasks[t].Labels[k],
				fmt.Sprintf("%.2f", res.Prob[t][k]),
				res.Inferred[t][k],
				env.Data.Truth.Label(model.TaskID(t), k))
		}
	}
	fmt.Println(lt)
	return nil
}

// compareSharded refits the collected answer log with a K-shard fitter and a
// fresh single model, reporting accuracy and wall-clock for both.
func compareSharded(env *experiment.Env, m *core.Model, shards int) error {
	sh, err := env.NewSharded(shards)
	if err != nil {
		return err
	}
	for _, a := range m.Answers().All() {
		if err := sh.Observe(a); err != nil {
			return err
		}
	}
	start := time.Now()
	st := sh.Fit()
	shardedElapsed := time.Since(start)

	single, err := env.NewModel()
	if err != nil {
		return err
	}
	for _, a := range m.Answers().All() {
		if err := single.Observe(a); err != nil {
			return err
		}
	}
	start = time.Now()
	single.Fit()
	singleElapsed := time.Since(start)

	fmt.Printf("sharded refit (K=%d): accuracy %.1f%% in %s (%d roaming workers); single refit: accuracy %.1f%% in %s\n\n",
		sh.NumShards(),
		100*model.Accuracy(sh.Result(), env.Data.Truth), shardedElapsed.Round(time.Millisecond),
		st.Roaming,
		100*model.Accuracy(single.Result(), env.Data.Truth), singleElapsed.Round(time.Millisecond))
	return nil
}

func newRand(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }
