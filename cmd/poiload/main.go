// Command poiload load-tests a poiserve endpoint with a simulated crowd —
// the closed-loop generator behind every requests/sec and p99 number this
// repository claims (internal/loadgen).
//
// Usage:
//
//	poiload [-addr 127.0.0.1:8080] [-workers N] [-rate R] [-duration D]
//	        [-warmup D] [-think D] [-model closed|open]
//	        [-scenario steady|surge|rolling-restart|drift] [-seed N]
//	        [-world-tasks N] [-world-workers N] [-json] [-append FILE -label L]
//	        [-serve-bin PATH [-engine E] [-shards K] [-cities N]
//	         [-budget N] [-fullem N] [-bg-fit D] [-bg-min-answers N]
//	         [-elastic [-elastic-check D] [-elastic-max K]] [-snap PATH]]
//	        [-max-error-rate F]
//	        [-slo-baseline FILE [-slo-run LABEL] [-slo-tol F]]
//	        [-drift-baseline FILE [-drift-run LABEL] [-drift-min-ratio F]]
//	        [-trace]
//
// With -trace every request carries a client-minted X-Poilabel-Trace ID and
// the report's slowest measured requests are joined, by ID, with the server's
// span trees from GET /debug/traces — the top five print with a per-span
// breakdown of where the server spent the client's p99. A spawned server
// (-serve-bin) gets -trace forwarded automatically; a pre-started server
// must be running with it for the join to find anything.
//
// Two modes:
//
//   - Against an already-running server: point -addr at a poiserve started
//     with matching -demo/-demo-tasks/-seed flags so client and server
//     agree on the world, e.g.
//
//     poiserve -addr 127.0.0.1:8080 -demo 64 -seed 7 &
//     poiload  -addr 127.0.0.1:8080 -workers 64 -seed 7 -duration 30s
//
//   - Self-contained (-serve-bin): poiload boots, owns, and tears down the
//     poiserve process itself, deriving the server flags from its own, so
//     the worlds cannot drift. This is the only mode that supports
//     -scenario rolling-restart, which mid-run POSTs /checkpoint, sends
//     SIGTERM (graceful drain + final checkpoint), waits for exit,
//     restarts the server with -restore, and then asserts that not one
//     acknowledged answer was lost and the error rate stayed under
//     -max-error-rate. A violated assertion exits non-zero — this is the
//     check CI's load-smoke job runs.
//
// With -json the run's report is printed as JSON; -append FILE -label L
// inserts it into FILE's runs map instead (creating the file if needed),
// which is how BENCH_serve.json is assembled.
//
// With -slo-baseline the finished run is additionally gated against a
// committed baseline file (the BENCH_serve.json shape): per-endpoint p99
// latency may not regress by more than -slo-tol (fractional, default 0.25)
// relative to the baseline run named by -slo-run. Like poibench -checkperf,
// the comparison only means something in a matching environment — a baseline
// whose OS, arch, CPU count, or seed differs from this run is reported and
// skipped rather than compared, so the gate bites on the reference machine
// and degrades to a smoke run everywhere else.
//
// -scenario drift shifts all traffic onto one quadrant's worker identities
// halfway through the measure phase — the workload that forces an elastic
// sharded server (-elastic, forwarded to the spawned poiserve along with its
// thresholds) to split its hot shard. The report carries pre/post-drift
// throughput separately, and -drift-baseline gates this run's post-drift
// req/s against the frozen-layout run recorded in BENCH_serve.json
// (-drift-run, default drift-closed-sharded-frozen): the elastic run must
// clear -drift-min-ratio (default 1.2) times the frozen run's post-drift
// throughput, with the same environment-match skip rule as -slo-baseline.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"poilabel/internal/loadgen"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "poiload: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8080", "server address (host:port)")
	workers := flag.Int("workers", 32, "closed-model concurrency / open-model identity pool")
	rate := flag.Float64("rate", 0, "open-model Poisson arrival rate, sessions/sec")
	duration := flag.Duration("duration", 30*time.Second, "measure phase length")
	warmup := flag.Duration("warmup", 2*time.Second, "warmup phase length (unrecorded)")
	think := flag.Duration("think", 10*time.Millisecond, "mean think time before each answer")
	modelStr := flag.String("model", "closed", "workload model: closed or open")
	scenarioStr := flag.String("scenario", "steady", "run shape: steady, surge, rolling-restart, or drift")
	seed := flag.Int64("seed", 7, "world + traffic seed; must match the server's -seed")
	worldTasks := flag.Int("world-tasks", 0, "demo world task count (0 = Beijing 200); must match server -demo-tasks")
	worldWorkers := flag.Int("world-workers", 0, "demo world worker count (0 = derived); must match server -demo")
	jsonOut := flag.Bool("json", false, "print the report as JSON")
	appendFile := flag.String("append", "", "insert the report into this JSON baseline file")
	label := flag.String("label", "", "run label for -append (default scenario-model-engine)")
	maxErrRate := flag.Float64("max-error-rate", 0.01, "fail when the error rate exceeds this")
	sloBaseline := flag.String("slo-baseline", "", "gate p99 latency against this committed baseline file (BENCH_serve.json shape)")
	sloRun := flag.String("slo-run", "", "baseline run label to compare against (default scenario-model-engine)")
	sloTol := flag.Float64("slo-tol", 0.25, "allowed fractional p99 regression vs the baseline run")

	serveBin := flag.String("serve-bin", "", "poiserve binary: spawn and own the server (required for rolling-restart)")
	engine := flag.String("engine", "single", "spawned server engine: single, sharded, or federated")
	shards := flag.Int("shards", 0, "spawned server shards per city")
	cities := flag.Int("cities", 0, "spawned server city count")
	budget := flag.Int("budget", -1, "spawned server assignment budget")
	fullEM := flag.Int("fullem", 100, "spawned server full-fit interval")
	bgFit := flag.Duration("bg-fit", 0, "spawned server background fit cadence (0 = synchronous fits)")
	bgMin := flag.Int("bg-min-answers", 256, "spawned server eager background fit threshold (needs -bg-fit)")
	elastic := flag.Bool("elastic", false, "spawned server: drift-aware elastic re-sharding (needs -engine sharded and -bg-fit)")
	elasticCheck := flag.Duration("elastic-check", time.Second, "spawned server drift-detector tick (needs -elastic)")
	elasticMax := flag.Int("elastic-max", 0, "spawned server shard-count ceiling (0 = poiserve default)")
	snap := flag.String("snap", "", "spawned server checkpoint path (default: temp file)")
	driftBaseline := flag.String("drift-baseline", "", "gate post-drift throughput against the frozen-layout run in this baseline file (drift scenario only)")
	driftRun := flag.String("drift-run", "drift-closed-sharded-frozen", "frozen-layout baseline run label for -drift-baseline")
	driftMinRatio := flag.Float64("drift-min-ratio", 1.2, "required post-drift throughput multiple over the frozen baseline run")
	traceOn := flag.Bool("trace", false, "stamp requests with X-Poilabel-Trace IDs and join the slowest with server span trees (server needs -trace; forwarded to a spawned server)")
	flag.Parse()

	model, err := loadgen.ParseModel(*modelStr)
	if err != nil {
		return err
	}
	scenario, err := loadgen.ParseScenario(*scenarioStr)
	if err != nil {
		return err
	}
	if *worldWorkers == 0 {
		*worldWorkers = loadgen.RequiredWorldWorkers(model, scenario, *workers)
	}
	baseURL := *addr
	if !strings.HasPrefix(baseURL, "http://") && !strings.HasPrefix(baseURL, "https://") {
		baseURL = "http://" + baseURL
	}

	cfg := loadgen.Config{
		BaseURL:      baseURL,
		Workers:      *workers,
		Rate:         *rate,
		Duration:     *duration,
		Warmup:       *warmup,
		Think:        *think,
		Model:        model,
		Scenario:     scenario,
		Seed:         *seed,
		WorldTasks:   *worldTasks,
		WorldWorkers: *worldWorkers,
		Trace:        *traceOn,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}

	var proc *serverProcess
	if *serveBin != "" {
		if *snap == "" {
			f, err := os.CreateTemp("", "poiload-*.snap")
			if err != nil {
				return err
			}
			f.Close()
			os.Remove(f.Name())
			*snap = f.Name()
			defer os.Remove(*snap)
		}
		// The background-fit flags ride along on both legs of a restart so a
		// rolling-restart run exercises the drain → final checkpoint →
		// restore path with the pipeline enabled.
		var bgArgs []string
		if *bgFit > 0 {
			bgArgs = []string{"-bg-fit", bgFit.String(), "-bg-min-answers", fmt.Sprint(*bgMin)}
		}
		if *elastic {
			bgArgs = append(bgArgs, "-elastic", "-elastic-check", elasticCheck.String())
			if *elasticMax > 0 {
				bgArgs = append(bgArgs, "-elastic-max", fmt.Sprint(*elasticMax))
			}
		}
		if *traceOn {
			bgArgs = append(bgArgs, "-trace")
		}
		proc = &serverProcess{
			bin:     *serveBin,
			addr:    *addr,
			baseURL: baseURL,
			startArgs: append([]string{
				"-addr", *addr, "-engine", *engine,
				"-shards", fmt.Sprint(*shards), "-cities", fmt.Sprint(*cities),
				"-budget", fmt.Sprint(*budget), "-fullem", fmt.Sprint(*fullEM),
				"-demo", fmt.Sprint(*worldWorkers), "-demo-tasks", fmt.Sprint(*worldTasks),
				"-seed", fmt.Sprint(*seed),
				"-checkpoint", *snap, "-shutdown-timeout", "15s",
			}, bgArgs...),
			restoreArgs: append([]string{
				"-addr", *addr, "-engine", *engine,
				"-shards", fmt.Sprint(*shards), "-cities", fmt.Sprint(*cities),
				"-fullem", fmt.Sprint(*fullEM), "-seed", fmt.Sprint(*seed),
				"-restore", *snap,
				"-checkpoint", *snap, "-shutdown-timeout", "15s",
			}, bgArgs...),
		}
		if err := proc.start(false); err != nil {
			return err
		}
		defer proc.stop()
		cfg.Restarter = proc
	} else if scenario == loadgen.ScenarioRollingRestart {
		return errors.New("-scenario rolling-restart needs -serve-bin (poiload must own the server process)")
	}

	rep, err := loadgen.Run(context.Background(), cfg)
	if err != nil {
		return err
	}
	if proc != nil {
		proc.stop()
	}

	if *jsonOut || *appendFile == "" {
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				return err
			}
		} else {
			printSummary(rep)
		}
	}
	if *appendFile != "" {
		l := *label
		if l == "" {
			l = fmt.Sprintf("%s-%s-%s", rep.Scenario, rep.Model, rep.Engine)
		}
		if err := appendBaseline(*appendFile, l, *seed, rep); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "poiload: appended run %q to %s\n", l, *appendFile)
	}

	if err := assess(rep, scenario, *maxErrRate, proc != nil); err != nil {
		return err
	}
	if *sloBaseline != "" {
		if err := checkSLO(*sloBaseline, *sloRun, *sloTol, *seed, rep); err != nil {
			return err
		}
	}
	if *driftBaseline != "" {
		if scenario != loadgen.ScenarioDrift {
			return errors.New("-drift-baseline only applies to -scenario drift")
		}
		if err := checkDrift(*driftBaseline, *driftRun, *driftMinRatio, *seed, rep); err != nil {
			return err
		}
	}
	return nil
}

// checkDrift is the elastic-vs-frozen throughput gate: it compares the
// finished drift run's post-drift req/s against the frozen-layout drift run
// recorded in the committed baseline file and fails when the ratio falls
// under minRatio — the "a split must actually buy throughput" assertion
// behind the elastic sharding work. Same environment-match skip rule as
// checkSLO: wall-clock ratios only mean something on the reference machine.
func checkDrift(path, frozenRun string, minRatio float64, seed int64, rep *loadgen.Report) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("drift baseline: %w", err)
	}
	var b baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return fmt.Errorf("drift baseline %s unreadable: %w", path, err)
	}
	if b.GOOS != runtime.GOOS || b.GOARCH != runtime.GOARCH || b.NumCPU != runtime.NumCPU() || b.Seed != seed {
		fmt.Fprintf(os.Stderr, "poiload: drift baseline env %s/%s %dcpu seed %d != this run %s/%s %dcpu seed %d — load ran, comparison skipped\n",
			b.GOOS, b.GOARCH, b.NumCPU, b.Seed,
			runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), seed)
		return nil
	}
	base, ok := b.Runs[frozenRun]
	if !ok {
		return fmt.Errorf("drift baseline %s has no run %q", path, frozenRun)
	}
	if base.PostDriftRPS <= 0 {
		return fmt.Errorf("drift baseline run %q recorded no post-drift throughput", frozenRun)
	}
	ratio := rep.PostDriftRPS / base.PostDriftRPS
	verdict := "ok"
	if ratio < minRatio {
		verdict = "FAIL"
	}
	fmt.Fprintf(os.Stderr, "poiload: drift %-4s post-drift %.0f req/s vs frozen baseline %.0f req/s (%.2fx, need ≥%.2fx)\n",
		verdict, rep.PostDriftRPS, base.PostDriftRPS, ratio, minRatio)
	if verdict == "FAIL" {
		return fmt.Errorf("post-drift throughput %.0f req/s is %.2fx the frozen run %q's %.0f req/s; need ≥%.2fx",
			rep.PostDriftRPS, ratio, frozenRun, base.PostDriftRPS, minRatio)
	}
	return nil
}

// checkSLO is the latency-regression gate: it compares the finished run's
// per-endpoint p99 against the run labelled sloRun (default
// scenario-model-engine) in the committed baseline file and fails when any
// endpoint regressed by more than tol. Mirroring poibench -checkperf,
// wall-clock numbers only mean something within a matching environment, so a
// baseline recorded under a different OS, arch, CPU count, or seed is
// reported and skipped — the load still ran, the comparison just cannot
// gate.
func checkSLO(path, sloRun string, tol float64, seed int64, rep *loadgen.Report) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("slo baseline: %w", err)
	}
	var b baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return fmt.Errorf("slo baseline %s unreadable: %w", path, err)
	}
	if b.GOOS != runtime.GOOS || b.GOARCH != runtime.GOARCH || b.NumCPU != runtime.NumCPU() || b.Seed != seed {
		fmt.Fprintf(os.Stderr, "poiload: slo baseline env %s/%s %dcpu seed %d != this run %s/%s %dcpu seed %d — load ran, comparison skipped\n",
			b.GOOS, b.GOARCH, b.NumCPU, b.Seed,
			runtime.GOOS, runtime.GOARCH, runtime.NumCPU(), seed)
		return nil
	}
	if sloRun == "" {
		sloRun = fmt.Sprintf("%s-%s-%s", rep.Scenario, rep.Model, rep.Engine)
	}
	base, ok := b.Runs[sloRun]
	if !ok {
		return fmt.Errorf("slo baseline %s has no run %q", path, sloRun)
	}
	var failures []string
	names := make([]string, 0, len(base.Endpoints))
	for name := range base.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bs := base.Endpoints[name]
		st, ok := rep.Endpoints[name]
		if !ok || bs.Count == 0 || bs.P99Ms <= 0 {
			continue
		}
		ratio := st.P99Ms / bs.P99Ms
		verdict := "ok"
		if ratio > 1+tol {
			verdict = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"%s p99 %.2fms vs baseline %.2fms (%+.0f%%, tolerance %+.0f%%)",
				name, st.P99Ms, bs.P99Ms, 100*(ratio-1), 100*tol))
		}
		fmt.Fprintf(os.Stderr, "poiload: slo %-4s %s p99 %.2fms vs baseline %.2fms (%+.0f%%)\n",
			verdict, name, st.P99Ms, bs.P99Ms, 100*(ratio-1))
	}
	if len(failures) > 0 {
		return fmt.Errorf("latency slo regression vs %s run %q:\n  %s", path, sloRun, strings.Join(failures, "\n  "))
	}
	return nil
}

// assess turns report violations into a non-zero exit. Lost answers and
// error rate always gate; the counter match additionally gates runs where
// poiload owned the server (sole client, so exact agreement is required)
// and no restart blurred the ledger.
func assess(rep *loadgen.Report, scenario loadgen.Scenario, maxErrRate float64, owned bool) error {
	var problems []string
	if rep.LostAnswers > 0 {
		problems = append(problems, fmt.Sprintf("%d acknowledged answers lost", rep.LostAnswers))
	}
	if rep.ErrorRate > maxErrRate {
		problems = append(problems, fmt.Sprintf("error rate %.4f exceeds %.4f", rep.ErrorRate, maxErrRate))
	}
	if scenario == loadgen.ScenarioRollingRestart && rep.Restarts == 0 {
		problems = append(problems, "rolling-restart run performed no restart")
	}
	if scenario == loadgen.ScenarioDrift && rep.DriftAtSeconds <= 0 {
		problems = append(problems, "drift run never entered its post-drift phase")
	}
	if owned && rep.Restarts == 0 {
		if rep.Counters == nil {
			problems = append(problems, "no /metrics counter match available")
		} else if !rep.Counters.Match {
			problems = append(problems, fmt.Sprintf("client/server request counters disagree: %+v", *rep.Counters))
		}
	}
	if len(problems) > 0 {
		return errors.New(strings.Join(problems, "; "))
	}
	return nil
}

// printSummary renders the human-readable report.
func printSummary(rep *loadgen.Report) {
	fmt.Printf("scenario %s, model %s, engine %s: %d workers", rep.Scenario, rep.Model, rep.Engine, rep.Workers)
	if rep.RatePerS > 0 {
		fmt.Printf(", %.0f arrivals/s", rep.RatePerS)
	}
	fmt.Printf(", world %d tasks / %d workers\n", rep.WorldTasks, rep.WorldWorkers)
	fmt.Printf("measured %.1fs (+%.1fs warmup): %.0f req/s, %.0f answers/s, error rate %.4f\n",
		rep.MeasureSeconds, rep.WarmupSeconds, rep.ThroughputRPS, rep.AnswersPerS, rep.ErrorRate)
	if rep.DriftAtSeconds > 0 {
		fmt.Printf("drift at %.1fs: %.0f req/s before, %.0f req/s after\n",
			rep.DriftAtSeconds, rep.PreDriftRPS, rep.PostDriftRPS)
	}

	names := make([]string, 0, len(rep.Endpoints))
	for name := range rep.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("%-12s %10s %10s %10s %10s %10s\n", "endpoint", "count", "p50 ms", "p90 ms", "p99 ms", "max ms")
	for _, name := range names {
		st := rep.Endpoints[name]
		fmt.Printf("%-12s %10d %10.2f %10.2f %10.2f %10.2f\n",
			name, st.Count, st.P50Ms, st.P90Ms, st.P99Ms, st.MaxMs)
	}
	fmt.Printf("answers: %d acked, %d server-side, %d lost", rep.AnswersAcked, rep.ServerAnswers, rep.LostAnswers)
	if rep.Restarts > 0 {
		fmt.Printf(" (across %d restart(s), %d retries)", rep.Restarts, rep.Retries)
	}
	fmt.Println()
	if rep.Counters != nil {
		ok := "MATCH"
		if !rep.Counters.Match {
			ok = "MISMATCH"
		}
		fmt.Printf("counters: client %d/%d vs server %d/%d assignments/answers — %s\n",
			rep.Counters.ClientAssignments, rep.Counters.ClientAnswers,
			rep.Counters.ServerAssignments, rep.Counters.ServerAnswers, ok)
	}
	if len(rep.SlowTraces) > 0 {
		printSlowTraces(rep.SlowTraces, 5)
	}
}

// printSlowTraces renders the top n client-side latency outliers joined with
// their server-side span trees: per outlier, the client's measured latency,
// the trace ID, and an indented tree of where the server spent the time.
func printSlowTraces(joined []loadgen.JoinedTrace, n int) {
	fmt.Println("slowest traced requests (client-side), with server span trees:")
	for i, jt := range joined {
		if i == n {
			break
		}
		fmt.Printf("%3d. %-12s client %8.2fms  trace %s", i+1, jt.Endpoint, jt.ClientMS, jt.ID)
		if jt.Server == nil {
			fmt.Println("  (no longer retained server-side)")
			continue
		}
		fmt.Printf("  server %.2fms\n", jt.Server.DurationMS)
		// Spans are in mint order, so a parent always precedes its children
		// and the depths resolve in one pass.
		depth := make([]int, len(jt.Server.Spans))
		for j, sp := range jt.Server.Spans {
			if sp.Parent >= 0 {
				depth[j] = depth[sp.Parent] + 1
			}
			var b strings.Builder
			fmt.Fprintf(&b, "     %s%-20s %8.2fms", strings.Repeat("  ", depth[j]), sp.Name, sp.DurationMS)
			for _, a := range sp.Attrs {
				fmt.Fprintf(&b, " %s=%s", a.K, a.V)
			}
			if sp.Failed {
				fmt.Fprintf(&b, " FAILED")
				if sp.Error != "" {
					fmt.Fprintf(&b, " (%s)", sp.Error)
				}
			}
			fmt.Println(b.String())
		}
	}
}

// baseline is the BENCH_serve.json shape: the environment header the other
// BENCH baselines carry plus a labelled map of runs.
type baseline struct {
	Name        string                     `json:"name"`
	Seed        int64                      `json:"seed"`
	GoVersion   string                     `json:"go_version"`
	GOOS        string                     `json:"goos"`
	GOARCH      string                     `json:"goarch"`
	NumCPU      int                        `json:"num_cpu"`
	GeneratedAt string                     `json:"generated_at"`
	Runs        map[string]*loadgen.Report `json:"runs"`
}

// appendBaseline inserts a labelled run into the baseline file, creating it
// on first use and refreshing the environment header.
func appendBaseline(path, label string, seed int64, rep *loadgen.Report) error {
	b := baseline{Runs: map[string]*loadgen.Report{}}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &b); err != nil {
			return fmt.Errorf("existing baseline %s unreadable: %w", path, err)
		}
		if b.Runs == nil {
			b.Runs = map[string]*loadgen.Report{}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	b.Name = "serve"
	b.Seed = seed
	b.GoVersion = runtime.Version()
	b.GOOS = runtime.GOOS
	b.GOARCH = runtime.GOARCH
	b.NumCPU = runtime.NumCPU()
	b.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	b.Runs[label] = rep

	out, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// serverProcess owns a poiserve child process and implements
// loadgen.Restarter with the real thing: checkpoint, SIGTERM, wait, restart
// with -restore, wait for /healthz.
type serverProcess struct {
	bin         string
	addr        string
	baseURL     string
	startArgs   []string
	restoreArgs []string
	cmd         *exec.Cmd
}

func (p *serverProcess) start(restore bool) error {
	args := p.startArgs
	if restore {
		args = p.restoreArgs
	}
	cmd := exec.Command(p.bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("starting %s: %w", p.bin, err)
	}
	p.cmd = cmd
	if err := p.awaitHealthy(20 * time.Second); err != nil {
		p.stop()
		return err
	}
	return nil
}

func (p *serverProcess) awaitHealthy(within time.Duration) error {
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		resp, err := http.Get(p.baseURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("server at %s not healthy within %s", p.baseURL, within)
}

// Restart implements loadgen.Restarter.
func (p *serverProcess) Restart(ctx context.Context) error {
	// Belt: an explicit checkpoint before the signal. Suspenders: the
	// graceful SIGTERM path drains in-flight requests and writes a final
	// checkpoint of its own, which is what actually guarantees nothing
	// acknowledged after this POST is lost.
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, p.baseURL+"/checkpoint", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	} else if ctx.Err() != nil {
		return ctx.Err()
	}
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	if err := p.waitExit(30 * time.Second); err != nil {
		return err
	}
	return p.start(true)
}

func (p *serverProcess) waitExit(within time.Duration) error {
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
		return nil // exit status irrelevant; the checkpoint already landed
	case <-time.After(within):
		p.cmd.Process.Kill()
		<-done
		return fmt.Errorf("server did not drain within %s; killed", within)
	}
}

func (p *serverProcess) stop() {
	if p.cmd == nil || p.cmd.Process == nil {
		return
	}
	p.cmd.Process.Signal(syscall.SIGTERM)
	p.waitExit(20 * time.Second)
	p.cmd = nil
}
