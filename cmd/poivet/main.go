// Command poivet runs the project's custom static analyzers (internal/lint)
// over the module: the mechanical enforcement of docs/ARCHITECTURE.md's
// "Locks and invariants" table.
//
// Usage:
//
//	poivet [-list] [packages]
//
// Packages default to ./... resolved against the enclosing module root.
// Diagnostics print as file:line:col: analyzer: message; the exit status is
// 1 when any diagnostic survives the //lint:ignore directives, 2 on a
// loading or internal error, 0 on a clean tree.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"poilabel/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	version := flag.String("V", "", "print version and exit (go vet -vettool protocol)")
	flagsJSON := flag.Bool("flags", false, "print analyzer flags as JSON and exit (go vet -vettool protocol)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: poivet [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	if *version != "" {
		// cmd/go fingerprints the tool with -V=full before driving it; the
		// content hash of the binary is the cache-busting version.
		fmt.Printf("poivet version devel buildID=%x\n", selfHash())
		return
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *flagsJSON {
		// cmd/go queries the vettool's analyzer flags as JSON; poivet has none.
		fmt.Println("[]")
		return
	}
	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		// Invoked by `go vet -vettool=poivet`: one package per .cfg file.
		os.Exit(lint.Unitchecker(args[0], lint.All()))
	}
	os.Exit(run(args))
}

func run(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "poivet:", err)
		return 2
	}
	loader, err := lint.NewModuleLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "poivet:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "poivet:", err)
		return 2
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "poivet:", err)
		return 2
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := d.Position(loader.Fset())
		name := pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !filepath.IsAbs(rel) {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s: %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "poivet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// selfHash content-hashes the running executable for the -V=full
// fingerprint, so go vet's cache invalidates when the tool changes.
func selfHash() []byte {
	h := sha256.New()
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			io.Copy(h, f)
			f.Close()
		}
	}
	return h.Sum(nil)
}
