// Benchmarks: one per table and figure of the paper's evaluation section,
// plus the DESIGN.md §4 ablations. Each benchmark executes the same code
// path as the corresponding `poibench <id>` command (which prints the full
// row/series output) and reports headline metrics via b.ReportMetric so a
// single `go test -bench=. -benchmem` run records both cost and quality.
//
// Figure/table mapping:
//
//	BenchmarkFig6WorkerQuality        — Fig. 6  worker-quality histogram
//	BenchmarkFig7DistanceWorker       — Fig. 7  distance impact per worker
//	BenchmarkFig8DistancePOI          — Fig. 8  distance impact per POI tier
//	BenchmarkTable1CaseStudy          — Table I case study
//	BenchmarkFig9InferenceAccuracy    — Fig. 9  MV/EM/IM accuracy sweep
//	BenchmarkFig10Convergence         — Fig. 10 EM convergence
//	BenchmarkFig11AssignmentAccuracy  — Fig. 11 + Table II assignment sweep
//	BenchmarkFig12InferenceTime       — Fig. 12 inference elapsed time
//	BenchmarkFig13InferenceScalability — Fig. 13 inference scalability
//	BenchmarkFig14AssignmentScalability — Fig. 14 assignment scalability
package poilabel_test

import (
	"fmt"
	"testing"
	"time"

	"poilabel/internal/assign"
	"poilabel/internal/baseline"
	"poilabel/internal/core"
	"poilabel/internal/experiment"
	"poilabel/internal/model"
)

const benchSeed = 7

func BenchmarkFig6WorkerQuality(b *testing.B) {
	s := experiment.DefaultScenario("Beijing", benchSeed)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFig6(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7DistanceWorker(b *testing.B) {
	s := experiment.DefaultScenario("Beijing", benchSeed)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFig7(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig8DistancePOI(b *testing.B) {
	s := experiment.DefaultScenario("Beijing", benchSeed)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFig8(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1CaseStudy(b *testing.B) {
	s := experiment.DefaultScenario("Beijing", benchSeed)
	var acc float64
	for i := 0; i < b.N; i++ {
		r, err := experiment.RunTable1(s)
		if err != nil {
			b.Fatal(err)
		}
		acc = r.TaskAccuracy
	}
	b.ReportMetric(100*acc, "caseAcc%")
}

func BenchmarkFig9InferenceAccuracy(b *testing.B) {
	s := experiment.DefaultScenario("Beijing", benchSeed)
	var r *experiment.Fig9Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.RunFig9(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(r.Budgets) - 1
	b.ReportMetric(100*r.MV[last], "MV%")
	b.ReportMetric(100*r.EM[last], "EM%")
	b.ReportMetric(100*r.IM[last], "IM%")
}

func BenchmarkFig10Convergence(b *testing.B) {
	s := experiment.DefaultScenario("Beijing", benchSeed)
	var r *experiment.Fig10Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.RunFig10(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.ItersTo005), "itersTo.005")
}

func BenchmarkFig11AssignmentAccuracy(b *testing.B) {
	s := experiment.DefaultScenario("Beijing", benchSeed)
	var r *experiment.Fig11Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.RunFig11(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(experiment.Budgets) - 1
	for _, run := range r.Runs {
		b.ReportMetric(100*run.Accuracy[last], string(run.Assigner)+"%")
	}
}

func BenchmarkFig12InferenceTime(b *testing.B) {
	s := experiment.DefaultScenario("Beijing", benchSeed)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunFig12(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13InferenceScalability(b *testing.B) {
	// The paper sweeps 10k..50k answers; one mid-scale point keeps the
	// benchmark honest while `poibench fig13` runs the full sweep.
	var r *experiment.Fig13Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.RunFig13(benchSeed, []int{20000})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Seconds[0], "fitSec")
	b.ReportMetric(float64(r.Iterations[0]), "iters")
}

func BenchmarkFig14AssignmentScalability(b *testing.B) {
	var r *experiment.Fig14Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.RunFig14(benchSeed, []int{4000}, []int{40})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.TaskMs[0], "assignMs@4k")
	b.ReportMetric(r.WorkerMs[0], "assignMs@10k/40w")
}

// --- Ablation benches (DESIGN.md §4) ---

func BenchmarkAblationAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunAblationAlpha(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFunctionSetSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunAblationFuncSet(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationUpdatePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunAblationUpdatePolicy(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGreedyVsExhaustive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunAblationGreedy(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the hot paths ---

// BenchmarkEMIteration measures one full E/M pass over the paper-scale
// answer log (1000 answers x 10 labels).
func BenchmarkEMIteration(b *testing.B) {
	env := experiment.DefaultScenario("Beijing", benchSeed).MustBuild()
	answers, err := env.Collect()
	if err != nil {
		b.Fatal(err)
	}
	cfg := env.Scenario.ModelConfig
	cfg.MaxIter = 1
	m, err := core.NewModel(env.Data.Tasks, env.Workers, env.Data.Normalizer(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, a := range answers.All() {
		if err := m.Observe(a); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Fit() // exactly one iteration at MaxIter=1
	}
}

// BenchmarkIncrementalUpdate measures the Section III-D per-answer update.
func BenchmarkIncrementalUpdate(b *testing.B) {
	env := experiment.DefaultScenario("Beijing", benchSeed).MustBuild()
	answers, err := env.Collect()
	if err != nil {
		b.Fatal(err)
	}
	m, err := env.NewModel()
	if err != nil {
		b.Fatal(err)
	}
	for _, a := range answers.All() {
		if err := m.Observe(a); err != nil {
			b.Fatal(err)
		}
	}
	m.Fit()
	// Pre-generate fresh (worker, task) answers not in the warm log.
	var fresh []model.Answer
	for wi := range env.Workers {
		for ti := range env.Data.Tasks {
			w, task := model.WorkerID(wi), model.TaskID(ti)
			if !m.Answers().Has(w, task) {
				fresh = append(fresh, env.Sim.Answer(w, task))
			}
		}
	}
	if len(fresh) == 0 {
		b.Fatal("no fresh pairs available")
	}
	b.ResetTimer()
	j := 0
	for i := 0; i < b.N; i++ {
		if j >= len(fresh) {
			// Exhausted the fresh pool: restart from the warm log.
			b.StopTimer()
			m2, err := env.NewModel()
			if err != nil {
				b.Fatal(err)
			}
			for _, a := range answers.All() {
				if err := m2.Observe(a); err != nil {
					b.Fatal(err)
				}
			}
			m2.Fit()
			m = m2
			j = 0
			b.StartTimer()
		}
		if err := m.Update(fresh[j]); err != nil {
			b.Fatal(err)
		}
		j++
	}
}

// BenchmarkAccOptAssign measures one assignment round on a warm model at
// three scales: S is the paper's deployment (200 tasks, 5 workers), M and
// L are synthetic worlds up to the Figure 14 sweep sizes. Rounds run on a
// reused Planner, the steady state of an assignment loop.
func BenchmarkAccOptAssign(b *testing.B) {
	b.Run("S", func(b *testing.B) {
		env := experiment.DefaultScenario("Beijing", benchSeed).MustBuild()
		answers, err := env.Collect()
		if err != nil {
			b.Fatal(err)
		}
		m, _, err := env.FitModel(answers)
		if err != nil {
			b.Fatal(err)
		}
		workers := env.Sim.SampleAvailable(5)
		pl := assign.NewPlanner()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pl.Assign(m, workers, 2)
		}
	})
	for _, sc := range []struct {
		name             string
		nTasks, nWorkers int
	}{
		{"M", 2000, 40},
		{"L", 10000, 100},
	} {
		b.Run(sc.name, func(b *testing.B) {
			env, err := experiment.SyntheticEnv(sc.nTasks, sc.nWorkers, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			m, err := env.NewModel()
			if err != nil {
				b.Fatal(err)
			}
			// Sparse warm answers so the estimator exercises its
			// non-trivial paths, as in the Figure 14 measurements.
			for t := 0; t < sc.nTasks; t += 10 {
				w := model.WorkerID(t / 10 % sc.nWorkers)
				if err := m.Observe(env.Sim.Answer(w, model.TaskID(t))); err != nil {
					b.Fatal(err)
				}
			}
			m.Fit()
			workers := env.Sim.SampleAvailable(sc.nWorkers)
			pl := assign.NewPlanner()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pl.Assign(m, workers, 2)
			}
		})
	}
}

// BenchmarkShardedFit compares the single-model full EM with the K-shard
// geo-partitioned fit on the L-size Fig13 workload (10k tasks, 100 workers,
// 50k answers). Shards fit concurrently and each converges at its own rate,
// so K=4 beats the single model even on one CPU; PERFORMANCE.md records the
// reference numbers.
func BenchmarkShardedFit(b *testing.B) {
	const nAnswers = 50000
	env, err := experiment.SyntheticEnv(nAnswers/5, 100, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	answers, err := env.Sim.CollectBiased(5, 0.10, 0.45)
	if err != nil {
		b.Fatal(err)
	}
	feed := func(obs func(model.Answer) error) {
		for _, a := range answers.All() {
			if err := obs(a); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("single", func(b *testing.B) {
		var sec float64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			m, err := env.NewModel()
			if err != nil {
				b.Fatal(err)
			}
			feed(m.Observe)
			b.StartTimer()
			start := time.Now()
			m.Fit()
			sec = time.Since(start).Seconds()
		}
		b.ReportMetric(sec, "fitSec")
	})
	for _, k := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("K%d", k), func(b *testing.B) {
			var sec float64
			var roaming int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				sh, err := env.NewSharded(k)
				if err != nil {
					b.Fatal(err)
				}
				feed(sh.Observe)
				b.StartTimer()
				start := time.Now()
				st := sh.Fit()
				sec = time.Since(start).Seconds()
				roaming = st.Roaming
			}
			b.ReportMetric(sec, "fitSec")
			b.ReportMetric(float64(roaming), "roaming")
		})
	}
}

// BenchmarkDawidSkene measures the baseline EM at paper scale.
func BenchmarkDawidSkene(b *testing.B) {
	env := experiment.DefaultScenario("Beijing", benchSeed).MustBuild()
	answers, err := env.Collect()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var res *model.Result
	for i := 0; i < b.N; i++ {
		res = baseline.DawidSkene{}.Infer(env.Data.Tasks, answers)
	}
	b.ReportMetric(100*model.Accuracy(res, env.Data.Truth), "acc%")
}

// BenchmarkMajorityVote measures the trivial baseline for reference.
func BenchmarkMajorityVote(b *testing.B) {
	env := experiment.DefaultScenario("Beijing", benchSeed).MustBuild()
	answers, err := env.Collect()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.MajorityVote{}.Infer(env.Data.Tasks, answers)
	}
}

// BenchmarkParallelEM compares a 10-iteration full-EM fit on the
// paper-scale answer log across E-step parallelism levels. The E-step
// fans out over goroutines with deterministic chunk merging; on a
// single-core host (like the CI box this repo was built on) the levels
// tie within overhead, on multi-core hosts p>1 wins at scale.
func BenchmarkParallelEM(b *testing.B) {
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p%d", par), func(b *testing.B) {
			env := experiment.DefaultScenario("Beijing", benchSeed).MustBuild()
			answers, err := env.Collect()
			if err != nil {
				b.Fatal(err)
			}
			cfg := env.Scenario.ModelConfig
			cfg.MaxIter = 10
			cfg.Parallelism = par
			m, err := core.NewModel(env.Data.Tasks, env.Workers, env.Data.Normalizer(), cfg)
			if err != nil {
				b.Fatal(err)
			}
			for _, a := range answers.All() {
				if err := m.Observe(a); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Fit()
			}
		})
	}
}

// BenchmarkAblationEarlyStopping measures the budget-aware stopping sweep.
func BenchmarkAblationEarlyStopping(b *testing.B) {
	s := experiment.DefaultScenario("Beijing", benchSeed)
	var r *experiment.StoppingResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.RunStopping(s, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.Consumed[0]), "budget@tau0")
}

// BenchmarkAblationCalibration measures the calibration comparison.
func BenchmarkAblationCalibration(b *testing.B) {
	s := experiment.DefaultScenario("Beijing", benchSeed)
	var r *experiment.CalibrationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.RunCalibration(s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.IM.ECE(), "imECE")
	b.ReportMetric(r.EM.ECE(), "emECE")
}

// BenchmarkAblationRobustness measures the noise and adversary sweeps.
func BenchmarkAblationRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunAblationNoise(benchSeed); err != nil {
			b.Fatal(err)
		}
		if _, err := experiment.RunAblationAdversary(benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}
