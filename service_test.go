package poilabel

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// engineMatrix enumerates the three backends with options that make each
// usable on the tiny test worlds.
var engineMatrix = []struct {
	name string
	opts []ServiceOption
}{
	{"single", []ServiceOption{WithEngine(EngineSingle)}},
	{"sharded", []ServiceOption{WithEngine(EngineSharded), WithShards(2)}},
	{"federated", []ServiceOption{WithEngine(EngineFederated), WithCities(2), WithShards(2)}},
}

// tid and wid are the stable string IDs the service tests register under.
func tid(i int) string { return fmt.Sprintf("task-%d", i) }
func wid(i int) string { return fmt.Sprintf("worker-%d", i) }

// registerTinyWorld registers the poilabel_test tinyWorld (8 line tasks, 4
// workers) under string IDs.
func registerTinyWorld(t *testing.T, svc *Service) *GroundTruth {
	t.Helper()
	tasks, workers, truth := tinyWorld()
	for i, task := range tasks {
		if err := svc.AddTask(tid(i), TaskSpec{
			Name:     task.Name,
			Location: task.Location,
			Labels:   task.Labels,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range workers {
		if err := svc.AddWorker(wid(i), WorkerSpec{Name: w.Name, Locations: w.Locations}); err != nil {
			t.Fatal(err)
		}
	}
	return truth
}

// submit feeds a fabricated answer with per-label correctness p.
func submit(t *testing.T, svc *Service, w, task int, truth *GroundTruth, p float64, rng *rand.Rand) {
	t.Helper()
	a := answer(WorkerID(w), TaskID(task), truth, p, rng)
	if err := svc.SubmitAnswer(wid(w), tid(task), a.Selected); err != nil {
		t.Fatal(err)
	}
}

func TestServiceEndToEndAllEngines(t *testing.T) {
	for _, eng := range engineMatrix {
		t.Run(eng.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			svc, err := NewService(append([]ServiceOption{WithBudget(40)}, eng.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			truth := registerTinyWorld(t, svc)
			ctx := context.Background()

			answered := make(map[[2]int]bool)
			for svc.RemainingBudget() > 0 {
				assigned, err := svc.RequestTasks(ctx, []string{wid(0), wid(1), wid(2), wid(3)})
				if err != nil {
					t.Fatal(err)
				}
				n := 0
				for w, ts := range assigned {
					for _, taskID := range ts {
						var wi, ti int
						fmt.Sscanf(w, "worker-%d", &wi)
						fmt.Sscanf(taskID, "task-%d", &ti)
						p := 0.9
						if wi == 3 {
							p = 0.5 // spammer
						}
						submit(t, svc, wi, ti, truth, p, rng)
						answered[[2]int{wi, ti}] = true
						n++
					}
				}
				if n == 0 {
					break
				}
			}
			// The assigner plans inside each worker's home shard/city; top
			// up the log with unsolicited answers for the remaining pairs —
			// they must be learned from all the same (and, on the federated
			// engine, exercise the cross-city roaming merge).
			for wi := 0; wi < 4; wi++ {
				for ti := 0; ti < 8; ti++ {
					if answered[[2]int{wi, ti}] {
						continue
					}
					p := 0.9
					if wi == 3 {
						p = 0.5
					}
					submit(t, svc, wi, ti, truth, p, rng)
				}
			}

			res, err := svc.ResultSet(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if acc := Accuracy(res, truth); acc < 0.7 {
				t.Errorf("end-to-end accuracy = %v, want >= 0.7", acc)
			}
			good, err := svc.WorkerInfo(wid(0))
			if err != nil {
				t.Fatal(err)
			}
			spam, err := svc.WorkerInfo(wid(3))
			if err != nil {
				t.Fatal(err)
			}
			if good.Quality <= spam.Quality {
				t.Errorf("good worker quality %v <= spammer %v", good.Quality, spam.Quality)
			}

			// Keyed results agree with the dense set and carry stable IDs.
			keyed, err := svc.Results(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(keyed) != 8 {
				t.Fatalf("keyed results cover %d tasks, want 8", len(keyed))
			}
			for i, tr := range keyed {
				if tr.Task != tid(i) {
					t.Fatalf("result %d keyed %q, want %q", i, tr.Task, tid(i))
				}
			}
		})
	}
}

func TestServiceBudgetEdgeCases(t *testing.T) {
	for _, eng := range engineMatrix {
		t.Run(eng.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(12))
			svc, err := NewService(append([]ServiceOption{WithBudget(3)}, eng.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			truth := registerTinyWorld(t, svc)
			ctx := context.Background()

			// Unsolicited answers never touch the budget.
			submit(t, svc, 0, 5, truth, 0.9, rng)
			if got := svc.RemainingBudget(); got != 3 {
				t.Fatalf("unsolicited answer consumed budget: %d", got)
			}

			// The budget hits 0 mid-round: two workers want 2 tasks each but
			// only 3 units exist, and all 3 are spent.
			assigned, err := svc.RequestTasks(ctx, []string{wid(0), wid(1)})
			if err != nil {
				t.Fatal(err)
			}
			total := 0
			for _, ts := range assigned {
				total += len(ts)
			}
			if total != 3 {
				t.Fatalf("assigned %d pairs with budget 3", total)
			}
			if got := svc.RemainingBudget(); got != 0 {
				t.Fatalf("remaining = %d, want 0", got)
			}

			// Exhaustion surfaces as the typed sentinel.
			if _, err := svc.RequestTasks(ctx, []string{wid(2)}); !errors.Is(err, ErrBudgetExhausted) {
				t.Fatalf("post-budget request error = %v, want ErrBudgetExhausted", err)
			}

			// Answering a pending pair clears it without touching the budget.
			for w, ts := range assigned {
				for _, taskID := range ts {
					var wi, ti int
					fmt.Sscanf(w, "worker-%d", &wi)
					fmt.Sscanf(taskID, "task-%d", &ti)
					submit(t, svc, wi, ti, truth, 0.9, rng)
				}
			}
			if got := svc.PendingCount(); got != 0 {
				t.Fatalf("pending after answering everything = %d", got)
			}
			if got := svc.RemainingBudget(); got != 0 {
				t.Fatalf("answers changed the budget: %d", got)
			}
		})
	}
}

func TestServicePendingDedup(t *testing.T) {
	for _, eng := range engineMatrix {
		t.Run(eng.name, func(t *testing.T) {
			svc, err := NewService(eng.opts...)
			if err != nil {
				t.Fatal(err)
			}
			registerTinyWorld(t, svc)
			ctx := context.Background()
			all := []string{wid(0), wid(1), wid(2), wid(3)}

			first, err := svc.RequestTasks(ctx, all)
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[string]bool)
			n1 := 0
			for w, ts := range first {
				for _, taskID := range ts {
					seen[w+"|"+taskID] = true
					n1++
				}
			}
			if n1 == 0 {
				t.Fatal("first round empty")
			}
			if got := svc.PendingCount(); got != n1 {
				t.Fatalf("pending = %d after handing out %d", got, n1)
			}

			// Re-requesting without answering returns only fresh pairs.
			second, err := svc.RequestTasks(ctx, all)
			if err != nil {
				t.Fatal(err)
			}
			for w, ts := range second {
				for _, taskID := range ts {
					if seen[w+"|"+taskID] {
						t.Fatalf("pending pair %s|%s handed out twice", w, taskID)
					}
				}
			}
		})
	}
}

func TestServiceTypedErrors(t *testing.T) {
	svc, err := NewService()
	if err != nil {
		t.Fatal(err)
	}

	// Engine-needing calls before registration.
	if _, err := svc.RequestTasks(context.Background(), nil); !errors.Is(err, ErrNoTasks) {
		t.Errorf("empty service error = %v, want ErrNoTasks", err)
	}

	registerTinyWorld(t, svc)

	if err := svc.SubmitAnswer("ghost", tid(0), []bool{true, true, false}); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("unknown worker error = %v, want ErrUnknownWorker", err)
	}
	if err := svc.SubmitAnswer(wid(0), "ghost", []bool{true, true, false}); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("unknown task error = %v, want ErrUnknownTask", err)
	}
	if _, err := svc.RequestTasks(context.Background(), []string{"ghost"}); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("unknown requesting worker error = %v, want ErrUnknownWorker", err)
	}
	if _, err := svc.WorkerInfo("ghost"); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("unknown worker info error = %v, want ErrUnknownWorker", err)
	}
	if err := svc.AddTask(tid(0), TaskSpec{Location: Pt(0, 0), Labels: []string{"a"}}); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate task error = %v, want ErrDuplicateID", err)
	}
	if err := svc.AddWorker(wid(0), WorkerSpec{Locations: []Point{Pt(0, 0)}}); !errors.Is(err, ErrDuplicateID) {
		t.Errorf("duplicate worker error = %v, want ErrDuplicateID", err)
	}
	if err := svc.SubmitAnswer(wid(0), tid(0), []bool{true}); err == nil {
		t.Error("vote-count mismatch accepted")
	}
}

func TestServiceDynamicRegistration(t *testing.T) {
	for _, eng := range engineMatrix {
		t.Run(eng.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(13))
			svc, err := NewService(eng.opts...)
			if err != nil {
				t.Fatal(err)
			}
			truth := registerTinyWorld(t, svc)
			ctx := context.Background()

			// Answers flow, the engine is built.
			for ti := 0; ti < 8; ti++ {
				submit(t, svc, 0, ti, truth, 0.9, rng)
			}
			if _, err := svc.Fit(ctx); err != nil {
				t.Fatal(err)
			}

			// Register a task and a worker after the fact.
			if err := svc.AddTask("late-task", TaskSpec{
				Location: Pt(3.5, 0.2),
				Labels:   []string{"a", "b", "c"},
			}); err != nil {
				t.Fatal(err)
			}
			if err := svc.AddWorker("late-worker", WorkerSpec{Locations: []Point{Pt(3.5, 0.4)}}); err != nil {
				t.Fatal(err)
			}

			// The new pair is immediately usable in both directions.
			if err := svc.SubmitAnswer("late-worker", "late-task", []bool{true, true, false}); err != nil {
				t.Fatal(err)
			}
			assigned, err := svc.RequestTasks(ctx, []string{"late-worker"})
			if err != nil {
				t.Fatal(err)
			}
			if len(assigned["late-worker"]) == 0 {
				t.Fatal("late worker received no tasks")
			}
			results, err := svc.Results(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 9 {
				t.Fatalf("results cover %d tasks, want 9", len(results))
			}
			if results[8].Task != "late-task" {
				t.Fatalf("last result keyed %q, want late-task", results[8].Task)
			}
			info, err := svc.WorkerInfo("late-worker")
			if err != nil {
				t.Fatal(err)
			}
			if info.Quality <= 0 || info.Quality >= 1 {
				t.Fatalf("late worker quality = %v", info.Quality)
			}
		})
	}
}

// TestServiceFederatedOneCityMatchesSharded pins the federation merge: a
// one-city federated service must produce results identical to the plain
// sharded engine on the same answer log.
func TestServiceFederatedOneCityMatchesSharded(t *testing.T) {
	build := func(opts ...ServiceOption) *Service {
		svc, err := NewService(append(opts, WithShards(3), WithFullEMInterval(0))...)
		if err != nil {
			t.Fatal(err)
		}
		registerTinyWorld(t, svc)
		return svc
	}
	fed := build(WithEngine(EngineFederated), WithCities(1))
	sh := build(WithEngine(EngineSharded))

	rng := rand.New(rand.NewSource(14))
	_, _, truth := tinyWorld()
	for wi := 0; wi < 4; wi++ {
		for ti := 0; ti < 8; ti++ {
			if (wi+ti)%5 == 0 {
				continue
			}
			a := answer(WorkerID(wi), TaskID(ti), truth, 0.85, rng)
			if err := fed.SubmitAnswer(wid(wi), tid(ti), a.Selected); err != nil {
				t.Fatal(err)
			}
			if err := sh.SubmitAnswer(wid(wi), tid(ti), a.Selected); err != nil {
				t.Fatal(err)
			}
		}
	}
	ctx := context.Background()
	fres, err := fed.ResultSet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	sres, err := sh.ResultSet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for ti := range fres.Prob {
		for k := range fres.Prob[ti] {
			if fres.Prob[ti][k] != sres.Prob[ti][k] {
				t.Fatalf("task %d label %d: federated %v != sharded %v",
					ti, k, fres.Prob[ti][k], sres.Prob[ti][k])
			}
		}
	}
	for wi := 0; wi < 4; wi++ {
		fi, _ := fed.WorkerInfo(wid(wi))
		si, _ := sh.WorkerInfo(wid(wi))
		if fi.Quality != si.Quality {
			t.Fatalf("worker %d: federated quality %v != sharded %v", wi, fi.Quality, si.Quality)
		}
	}
}

// TestServiceConcurrent hammers one service from many goroutines mixing
// submissions, assignment requests, reads, and registrations; run with
// -race it is the acceptance check that the Service is concurrency-safe.
func TestServiceConcurrent(t *testing.T) {
	for _, eng := range engineMatrix {
		t.Run(eng.name, func(t *testing.T) {
			svc, err := NewService(append([]ServiceOption{WithFullEMInterval(10)}, eng.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			truth := registerTinyWorld(t, svc)
			ctx := context.Background()

			const submitters = 4
			var wg sync.WaitGroup
			errc := make(chan error, 64)

			// Each submitter owns one worker and answers every task —
			// distinct pairs, so no duplicate-answer errors.
			for wi := 0; wi < submitters; wi++ {
				wg.Add(1)
				go func(wi int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(100 + wi)))
					for ti := 0; ti < 8; ti++ {
						a := answer(WorkerID(wi), TaskID(ti), truth, 0.9, rng)
						if err := svc.SubmitAnswer(wid(wi), tid(ti), a.Selected); err != nil {
							errc <- err
							return
						}
					}
				}(wi)
			}
			// Two requesters keep asking for assignments.
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 5; i++ {
						if _, err := svc.RequestTasks(ctx, []string{wid(0), wid(1), wid(2), wid(3)}); err != nil {
							errc <- err
							return
						}
					}
				}()
			}
			// Readers pull results and worker info concurrently.
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; i < 3; i++ {
						if _, err := svc.Results(ctx); err != nil {
							errc <- err
							return
						}
						if _, err := svc.WorkerInfo(wid(r)); err != nil {
							errc <- err
							return
						}
					}
				}(r)
			}
			// A registrar grows the world mid-flight.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 3; i++ {
					if err := svc.AddTask(fmt.Sprintf("grow-task-%d", i), TaskSpec{
						Location: Pt(float64(i), 2),
						Labels:   []string{"x", "y"},
					}); err != nil {
						errc <- err
						return
					}
					if err := svc.AddWorker(fmt.Sprintf("grow-worker-%d", i), WorkerSpec{
						Locations: []Point{Pt(float64(i), 3)},
					}); err != nil {
						errc <- err
						return
					}
				}
			}()
			wg.Wait()
			close(errc)
			for err := range errc {
				t.Fatal(err)
			}

			results, err := svc.Results(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 8+3 {
				t.Fatalf("results cover %d tasks, want 11", len(results))
			}
		})
	}
}

func TestServiceContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	svc, err := NewService(WithFullEMInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	truth := registerTinyWorld(t, svc)
	for wi := 0; wi < 4; wi++ {
		for ti := 0; ti < 8; ti++ {
			submit(t, svc, wi, ti, truth, 0.8, rng)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := svc.Fit(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Fit error = %v, want context.Canceled", err)
	}
	if _, err := svc.Results(ctx); !errors.Is(err, context.Canceled) {
		t.Errorf("Results error = %v, want context.Canceled", err)
	}
	if _, err := svc.RequestTasks(ctx, []string{wid(0)}); !errors.Is(err, context.Canceled) {
		t.Errorf("RequestTasks error = %v, want context.Canceled", err)
	}
	// The service stays usable with a live context.
	if _, err := svc.Results(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestServiceSpatialFirstSeesDynamicTasks pins the assigner-index fix: the
// SpatialFirst grid is rebuilt on AddTask, so a task registered after the
// engine is built is still discoverable by the nearest-task search.
func TestServiceSpatialFirstSeesDynamicTasks(t *testing.T) {
	svc, err := NewService(WithAssigner(AssignerSpatialFirst))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AddTask("t0", TaskSpec{Location: Pt(0, 0), Labels: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if err := svc.AddWorker("w0", WorkerSpec{Locations: []Point{Pt(9, 9)}}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Build the engine (and its grid) by answering the only task.
	if err := svc.SubmitAnswer("w0", "t0", []bool{true}); err != nil {
		t.Fatal(err)
	}
	// A new task right next to the worker must be offered.
	if err := svc.AddTask("t-near", TaskSpec{Location: Pt(9, 9), Labels: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	assigned, err := svc.RequestTasks(ctx, []string{"w0"})
	if err != nil {
		t.Fatal(err)
	}
	if len(assigned["w0"]) != 1 || assigned["w0"][0] != "t-near" {
		t.Fatalf("SpatialFirst assigned %v, want [t-near]", assigned["w0"])
	}
}

// TestServiceCoincidentLocations pins the zero-diameter fix: a world whose
// locations all coincide reports an error instead of panicking inside the
// distance normalizer.
func TestServiceCoincidentLocations(t *testing.T) {
	svc, err := NewService()
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AddTask("t0", TaskSpec{Location: Pt(1, 1), Labels: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if err := svc.AddWorker("w0", WorkerSpec{Locations: []Point{Pt(1, 1)}}); err != nil {
		t.Fatal(err)
	}
	if err := svc.SubmitAnswer("w0", "t0", []bool{true}); err == nil {
		t.Fatal("coincident-location world accepted")
	}
	if _, err := svc.RequestTasks(context.Background(), []string{"w0"}); err == nil {
		t.Fatal("coincident-location assignment accepted")
	}
	// Adding spatial extent unblocks the service.
	if err := svc.AddTask("t1", TaskSpec{Location: Pt(5, 5), Labels: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if err := svc.SubmitAnswer("w0", "t0", []bool{true}); err != nil {
		t.Fatalf("service stuck after gaining extent: %v", err)
	}
}

func TestServiceOptionValidation(t *testing.T) {
	bad := []struct {
		name string
		opt  ServiceOption
	}{
		{"engine", WithEngine(EngineKind(99))},
		{"assigner", WithAssigner(AssignerKind(99))},
		{"h", WithTasksPerRequest(0)},
		{"shards", WithShards(-1)},
		{"cities", WithCities(-2)},
		{"refine", WithRefineSweeps(-1)},
		{"fullem", WithFullEMInterval(-1)},
	}
	for _, tc := range bad {
		if _, err := NewService(tc.opt); err == nil {
			t.Errorf("%s: invalid option accepted", tc.name)
		}
	}
	// Registration-side validation.
	svc, err := NewService()
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AddTask("", TaskSpec{Labels: []string{"a"}}); err == nil {
		t.Error("empty task id accepted")
	}
	if err := svc.AddTask("t", TaskSpec{}); err == nil {
		t.Error("task without labels accepted")
	}
	if err := svc.AddWorker("", WorkerSpec{Locations: []Point{Pt(0, 0)}}); err == nil {
		t.Error("empty worker id accepted")
	}
	if err := svc.AddWorker("w", WorkerSpec{}); err == nil {
		t.Error("worker without locations accepted")
	}
}
