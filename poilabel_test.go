package poilabel

import (
	"errors"
	"math/rand"
	"testing"
)

// tinyWorld builds a small public-API world: 8 tasks on a line with 3
// labels each, 4 workers, plus ground truth for evaluation.
func tinyWorld() ([]Task, []Worker, *GroundTruth) {
	tasks := make([]Task, 8)
	truth := make([][]bool, 8)
	for i := range tasks {
		tasks[i] = Task{
			ID:       TaskID(i),
			Name:     "poi",
			Location: Pt(float64(i), 0),
			Labels:   []string{"a", "b", "c"},
		}
		truth[i] = []bool{i%2 == 0, true, false}
	}
	workers := make([]Worker, 4)
	for i := range workers {
		workers[i] = Worker{
			ID:        WorkerID(i),
			Name:      "w",
			Locations: []Point{Pt(float64(2*i), 0.5)},
		}
	}
	return tasks, workers, &GroundTruth{Truth: truth}
}

// answer fabricates a worker answer with the given per-label correctness.
func answer(w WorkerID, t TaskID, truth *GroundTruth, p float64, rng *rand.Rand) Answer {
	row := truth.Truth[t]
	sel := make([]bool, len(row))
	for k := range sel {
		if rng.Float64() < p {
			sel[k] = row[k]
		} else {
			sel[k] = !row[k]
		}
	}
	return Answer{Worker: w, Task: t, Selected: sel}
}

func TestNewValidation(t *testing.T) {
	tasks, workers, _ := tinyWorld()

	if _, err := New(nil, workers); err == nil {
		t.Error("no tasks accepted")
	}

	badID := append([]Task(nil), tasks...)
	badID[3].ID = 9
	if _, err := New(badID, workers); err == nil {
		t.Error("non-dense task IDs accepted")
	}

	noLoc := append([]Worker(nil), workers...)
	noLoc[0].Locations = nil
	if _, err := New(tasks, noLoc); err == nil {
		t.Error("worker without location accepted")
	}

	if _, err := New(tasks, workers, Options{}, Options{}); err == nil {
		t.Error("two Options values accepted")
	}

	if _, err := New(tasks, workers, Options{TasksPerRequest: -1}); err == nil {
		t.Error("negative TasksPerRequest accepted")
	}

	if _, err := New(tasks, workers, Options{Assigner: AssignerKind(99)}); err == nil {
		t.Error("unknown assigner accepted")
	}
}

func TestFrameworkEndToEnd(t *testing.T) {
	tasks, workers, truth := tinyWorld()
	rng := rand.New(rand.NewSource(1))
	fw, err := New(tasks, workers, Options{Budget: 40, TasksPerRequest: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fw.RemainingBudget() != 40 {
		t.Fatalf("initial budget = %d", fw.RemainingBudget())
	}

	for fw.RemainingBudget() > 0 {
		assigned, err := fw.RequestTasks([]WorkerID{0, 1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for w, ts := range assigned {
			for _, tid := range ts {
				// Worker 3 is a spammer; the rest are good.
				p := 0.9
				if w == 3 {
					p = 0.5
				}
				if err := fw.SubmitAnswer(answer(w, tid, truth, p, rng)); err != nil {
					t.Fatal(err)
				}
				n++
			}
		}
		if n == 0 {
			break
		}
	}

	res := fw.Results()
	if acc := Accuracy(res, truth); acc < 0.7 {
		t.Errorf("end-to-end accuracy = %v, want >= 0.7", acc)
	}
	// Quality ordering must hold.
	if fw.WorkerQuality(0) <= fw.WorkerQuality(3) {
		t.Errorf("good worker quality %v <= spammer %v", fw.WorkerQuality(0), fw.WorkerQuality(3))
	}
}

func TestFrameworkBudgetAccounting(t *testing.T) {
	tasks, workers, _ := tinyWorld()
	fw, err := New(tasks, workers, Options{Budget: 3, TasksPerRequest: 2})
	if err != nil {
		t.Fatal(err)
	}
	assigned, err := fw.RequestTasks([]WorkerID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ts := range assigned {
		total += len(ts)
	}
	if total != 3 {
		t.Errorf("assigned %d tasks with budget 3", total)
	}
	if fw.RemainingBudget() != 0 {
		t.Errorf("remaining = %d, want 0", fw.RemainingBudget())
	}
	if _, err := fw.RequestTasks([]WorkerID{0}); !errors.Is(err, ErrBudgetExhausted) {
		t.Errorf("post-budget request error = %v, want ErrBudgetExhausted", err)
	}
}

func TestFrameworkUnlimitedBudget(t *testing.T) {
	tasks, workers, _ := tinyWorld()
	fw, err := New(tasks, workers)
	if err != nil {
		t.Fatal(err)
	}
	if fw.RemainingBudget() != -1 {
		t.Errorf("unlimited budget reported as %d", fw.RemainingBudget())
	}
	if _, err := fw.RequestTasks([]WorkerID{0}); err != nil {
		t.Errorf("unlimited request failed: %v", err)
	}
}

func TestFrameworkRequestUnknownWorker(t *testing.T) {
	tasks, workers, _ := tinyWorld()
	fw, _ := New(tasks, workers)
	if _, err := fw.RequestTasks([]WorkerID{42}); err == nil {
		t.Error("unknown worker accepted")
	}
}

func TestFrameworkUnsolicitedAnswer(t *testing.T) {
	tasks, workers, truth := tinyWorld()
	rng := rand.New(rand.NewSource(3))
	fw, _ := New(tasks, workers, Options{Budget: 10})
	// An answer that was never assigned must still be learned from.
	if err := fw.SubmitAnswer(answer(0, 5, truth, 0.9, rng)); err != nil {
		t.Fatalf("unsolicited answer rejected: %v", err)
	}
	if fw.RemainingBudget() != 10 {
		t.Errorf("unsolicited answer consumed budget: %d", fw.RemainingBudget())
	}
	if fw.Model().Answers().Len() != 1 {
		t.Error("unsolicited answer not recorded")
	}
}

func TestFrameworkAssignerKinds(t *testing.T) {
	tasks, workers, _ := tinyWorld()
	for _, kind := range []AssignerKind{AssignerAccOpt, AssignerSpatialFirst, AssignerRandom} {
		fw, err := New(tasks, workers, Options{Assigner: kind, Budget: 4})
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		assigned, err := fw.RequestTasks([]WorkerID{0, 1})
		if err != nil {
			t.Fatalf("kind %d request: %v", kind, err)
		}
		if len(assigned) == 0 {
			t.Errorf("kind %d assigned nothing", kind)
		}
	}
}

func TestFrameworkIntrospection(t *testing.T) {
	tasks, workers, truth := tinyWorld()
	rng := rand.New(rand.NewSource(4))
	fw, _ := New(tasks, workers)
	for ti := 0; ti < 8; ti++ {
		if err := fw.SubmitAnswer(answer(1, TaskID(ti), truth, 0.9, rng)); err != nil {
			t.Fatal(err)
		}
	}
	fw.Refit()

	if p := fw.AnswerAccuracy(1, 0); p < 0.5 || p > 1 {
		t.Errorf("AnswerAccuracy = %v", p)
	}
	infl := fw.POIInfluence(0)
	sens := fw.DistanceSensitivity(1)
	var si, ss float64
	for i := range infl {
		si += infl[i]
	}
	for i := range sens {
		ss += sens[i]
	}
	if len(infl) != 3 || si < 0.999 || si > 1.001 {
		t.Errorf("POIInfluence = %v", infl)
	}
	if len(sens) != 3 || ss < 0.999 || ss > 1.001 {
		t.Errorf("DistanceSensitivity = %v", sens)
	}
	// Returned slices must be copies.
	infl[0] = 99
	if fw.POIInfluence(0)[0] == 99 {
		t.Error("POIInfluence returns aliased storage")
	}
}

func TestShardedModelEndToEnd(t *testing.T) {
	tasks, workers, truth := tinyWorld()
	rng := rand.New(rand.NewSource(5))
	sm, err := NewShardedModel(tasks, workers, ShardOptions{Shards: 4, RefineSweeps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sm.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", sm.NumShards())
	}

	// Batch-collect answers: every worker answers every task, worker 3 is a
	// spammer.
	for wi := range workers {
		for ti := range tasks {
			p := 0.9
			if wi == 3 {
				p = 0.5
			}
			if err := sm.SubmitAnswer(answer(WorkerID(wi), TaskID(ti), truth, p, rng)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := sm.Fit()
	if !st.Converged {
		t.Error("sharded fit did not converge")
	}
	if st.Roaming == 0 {
		t.Error("workers answering every task should roam across shards")
	}

	res := sm.Results()
	if len(res.Inferred) != len(tasks) {
		t.Fatalf("result covers %d tasks, want %d", len(res.Inferred), len(tasks))
	}
	if acc := Accuracy(res, truth); acc < 0.7 {
		t.Errorf("sharded accuracy = %v, want >= 0.7", acc)
	}
	if sm.WorkerQuality(0) <= sm.WorkerQuality(3) {
		t.Errorf("good worker quality %v <= spammer %v", sm.WorkerQuality(0), sm.WorkerQuality(3))
	}
	if pdw := sm.DistanceSensitivity(0); len(pdw) == 0 {
		t.Error("empty sensitivity vector")
	}
	for ti := range tasks {
		if s := sm.TaskShard(TaskID(ti)); s < 0 || s >= sm.NumShards() {
			t.Fatalf("task %d mapped to shard %d", ti, s)
		}
	}
}

func TestShardedModelAssignTasks(t *testing.T) {
	tasks, workers, truth := tinyWorld()
	rng := rand.New(rand.NewSource(6))
	sm, err := NewShardedModel(tasks, workers, ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	// A sparse warm-up log leaves every worker undone tasks to be assigned.
	for wi := range workers {
		if err := sm.SubmitAnswer(answer(WorkerID(wi), TaskID(wi), truth, 0.9, rng)); err != nil {
			t.Fatal(err)
		}
	}
	sm.Fit()

	all := []WorkerID{0, 1, 2, 3}
	a, err := sm.AssignTasks(all, 2, -1)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for w, ts := range a {
		if len(ts) > 2 {
			t.Fatalf("worker %d got %d tasks, h=2", w, len(ts))
		}
		total += len(ts)
	}
	if total == 0 {
		t.Fatal("empty unlimited assignment")
	}

	b, err := sm.AssignTasks(all, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, ts := range b {
		n += len(ts)
	}
	if n != 3 {
		t.Fatalf("budgeted assignment used %d of 3", n)
	}

	// Pairs handed out in the first round are pending and must not be
	// re-assigned before their answers arrive — the same dedup contract the
	// Framework has always had.
	first := make(map[[2]int]bool)
	for w, ts := range a {
		for _, tid := range ts {
			first[[2]int{int(w), int(tid)}] = true
		}
	}
	for w, ts := range b {
		for _, tid := range ts {
			if first[[2]int{int(w), int(tid)}] {
				t.Fatalf("pending pair (%d, %d) handed out twice", w, tid)
			}
		}
	}

	if _, err := sm.AssignTasks([]WorkerID{99}, 2, -1); err == nil {
		t.Error("unknown worker accepted")
	}
	if _, err := sm.AssignTasks(all, 0, -1); err == nil {
		t.Error("non-positive h accepted")
	}
}

func TestNewShardedModelValidation(t *testing.T) {
	tasks, workers, _ := tinyWorld()
	if _, err := NewShardedModel(nil, workers); err == nil {
		t.Error("no tasks accepted")
	}
	badID := append([]Task(nil), tasks...)
	badID[3].ID = 9
	if _, err := NewShardedModel(badID, workers); err == nil {
		t.Error("non-dense task IDs accepted")
	}
	noLoc := append([]Worker(nil), workers...)
	noLoc[1].Locations = nil
	if _, err := NewShardedModel(tasks, noLoc); err == nil {
		t.Error("worker without locations accepted")
	}
	if _, err := NewShardedModel(tasks, workers, ShardOptions{}, ShardOptions{}); err == nil {
		t.Error("two option structs accepted")
	}
	// Shard counts above the task count clamp.
	sm, err := NewShardedModel(tasks, workers, ShardOptions{Shards: 100})
	if err != nil {
		t.Fatal(err)
	}
	if sm.NumShards() != len(tasks) {
		t.Errorf("NumShards = %d, want clamp to %d", sm.NumShards(), len(tasks))
	}
}

func TestMajorityVoteHelper(t *testing.T) {
	tasks, _, _ := tinyWorld()
	answers := []Answer{
		{Worker: 0, Task: 0, Selected: []bool{true, true, false}},
		{Worker: 1, Task: 0, Selected: []bool{true, false, false}},
		{Worker: 2, Task: 0, Selected: []bool{true, true, true}},
	}
	res, err := MajorityVote(tasks, answers)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Inferred[0][0] || !res.Inferred[0][1] || res.Inferred[0][2] {
		t.Errorf("MV inference = %v", res.Inferred[0])
	}
	// Duplicate answers must be rejected.
	if _, err := MajorityVote(tasks, append(answers, answers[0])); err == nil {
		t.Error("duplicate answers accepted")
	}
}

func TestDawidSkeneHelper(t *testing.T) {
	tasks, _, truth := tinyWorld()
	rng := rand.New(rand.NewSource(5))
	var answers []Answer
	for ti := 0; ti < 8; ti++ {
		for wi := 0; wi < 4; wi++ {
			answers = append(answers, answer(WorkerID(wi), TaskID(ti), truth, 0.85, rng))
		}
	}
	res, err := DawidSkene(tasks, answers)
	if err != nil {
		t.Fatal(err)
	}
	if acc := Accuracy(res, truth); acc < 0.8 {
		t.Errorf("DS accuracy = %v, want >= 0.8", acc)
	}
}

func TestFrameworkEstimatedAccuracy(t *testing.T) {
	tasks, workers, truth := tinyWorld()
	rng := rand.New(rand.NewSource(6))
	fw, _ := New(tasks, workers)
	// With no evidence every label sits at the 0.5 prior.
	if got := fw.EstimatedAccuracy(); got != 0.5 {
		t.Errorf("prior estimated accuracy = %v, want 0.5", got)
	}
	for ti := 0; ti < 8; ti++ {
		for wi := 0; wi < 3; wi++ {
			if err := fw.SubmitAnswer(answer(WorkerID(wi), TaskID(ti), truth, 0.9, rng)); err != nil {
				t.Fatal(err)
			}
		}
	}
	fw.Refit()
	got := fw.EstimatedAccuracy()
	if got <= 0.6 {
		t.Errorf("estimated accuracy after evidence = %v, want > 0.6", got)
	}
	if got > 1 {
		t.Errorf("estimated accuracy %v > 1", got)
	}
}

func TestFrameworkCheckpointRoundTrip(t *testing.T) {
	tasks, workers, truth := tinyWorld()
	rng := rand.New(rand.NewSource(7))
	fw, _ := New(tasks, workers)
	for ti := 0; ti < 8; ti++ {
		if err := fw.SubmitAnswer(answer(0, TaskID(ti), truth, 0.9, rng)); err != nil {
			t.Fatal(err)
		}
	}
	fw.Refit()
	path := t.TempDir() + "/fw.ckpt"
	if err := fw.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	fw2, _ := New(tasks, workers)
	if err := fw2.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	if fw2.Model().Answers().Len() != 8 {
		t.Errorf("restored framework has %d answers, want 8", fw2.Model().Answers().Len())
	}
	if fw2.WorkerQuality(0) != fw.WorkerQuality(0) {
		t.Error("restored worker quality differs")
	}
}

func TestFrameworkExtraAssignerKinds(t *testing.T) {
	tasks, workers, _ := tinyWorld()
	for _, kind := range []AssignerKind{AssignerEntropy, AssignerMarginalGreedy} {
		fw, err := New(tasks, workers, Options{Assigner: kind, Budget: 4})
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		assigned, err := fw.RequestTasks([]WorkerID{0, 1})
		if err != nil {
			t.Fatalf("kind %d request: %v", kind, err)
		}
		total := 0
		for _, ts := range assigned {
			total += len(ts)
		}
		if total != 4 {
			t.Errorf("kind %d assigned %d tasks with budget 4", kind, total)
		}
	}
}

func TestFlagBiasedWorkers(t *testing.T) {
	tasks, _, truth := tinyWorld()
	_ = tasks
	rng := rand.New(rand.NewSource(8))
	var answers []Answer
	for ti := 0; ti < 8; ti++ {
		for wi := 0; wi < 3; wi++ {
			answers = append(answers, answer(WorkerID(wi), TaskID(ti), truth, 0.85, rng))
		}
		// Worker 3 ticks everything.
		answers = append(answers, Answer{Worker: 3, Task: TaskID(ti), Selected: []bool{true, true, true}})
	}
	flagged, err := FlagBiasedWorkers(answers)
	if err != nil {
		t.Fatal(err)
	}
	if len(flagged) != 1 || flagged[0] != 3 {
		t.Errorf("flagged = %v, want [3]", flagged)
	}
	if _, err := FlagBiasedWorkers(append(answers, answers[0])); err == nil {
		t.Error("duplicate answers accepted")
	}
}
