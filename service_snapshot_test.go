package poilabel

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// buildMidStreamService drives a service into a representative mid-stream
// state: some pairs handed out and answered, some still pending, budget
// partially spent, a task and a worker registered after the engine was
// built, and answers submitted since the last full fit. It returns the
// service and the checkpoint bytes taken at that point.
func buildMidStreamService(t *testing.T, opts ...ServiceOption) (*Service, []byte) {
	t.Helper()
	ctx := context.Background()
	svc, err := NewService(opts...)
	if err != nil {
		t.Fatal(err)
	}
	truth := registerTinyWorld(t, svc)
	rng := rand.New(rand.NewSource(11))

	// Hand out pairs (spends budget, marks pending) and answer only some of
	// them, so the checkpoint carries live pending state.
	assigned, err := svc.RequestTasks(ctx, []string{wid(0), wid(1), wid(2)})
	if err != nil {
		t.Fatal(err)
	}
	answered := 0
	for w := 0; w < 3; w++ {
		for _, taskID := range assigned[wid(w)] {
			if answered >= 3 {
				break
			}
			ti, err := strconv.Atoi(strings.TrimPrefix(taskID, "task-"))
			if err != nil {
				t.Fatalf("unexpected task id %q", taskID)
			}
			submit(t, svc, w, ti, truth, 0.9, rng)
			answered++
		}
	}
	if svc.PendingCount() == 0 {
		t.Fatal("test world produced no leftover pending pairs")
	}

	// Grow the world after the engine exists: the snapshot must record the
	// construction boundary to rebuild the same partitions.
	if err := svc.AddTask("late-task", TaskSpec{Location: Pt(3.5, 0.25), Labels: []string{"a", "b"}}); err != nil {
		t.Fatal(err)
	}
	if err := svc.AddWorker("late-worker", WorkerSpec{Locations: []Point{Pt(5.5, 0.5)}}); err != nil {
		t.Fatal(err)
	}
	if err := svc.SubmitAnswer("late-worker", "late-task", []bool{true, false}); err != nil {
		t.Fatal(err)
	}
	// A few unsolicited answers leave sinceFull mid-interval.
	submit(t, svc, 3, 6, truth, 0.8, rng)
	submit(t, svc, 3, 1, truth, 0.8, rng)

	var buf bytes.Buffer
	if err := svc.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return svc, buf.Bytes()
}

// TestServiceCheckpointRestoreAllEngines is the crash-recovery round trip:
// checkpoint a mid-stream service, restore into a fresh one, and require
// bit-identical results, bit-identical next assignment plans, preserved
// pending pairs, and no double-spent budget — for every engine.
func TestServiceCheckpointRestoreAllEngines(t *testing.T) {
	for _, eng := range engineMatrix {
		t.Run(eng.name, func(t *testing.T) {
			ctx := context.Background()
			opts := append([]ServiceOption{WithBudget(30), WithFullEMInterval(5), WithSeed(3)}, eng.opts...)
			orig, snap := buildMidStreamService(t, opts...)

			restored, err := NewService(opts...)
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.Restore(bytes.NewReader(snap)); err != nil {
				t.Fatal(err)
			}

			if got, want := restored.TaskIDs(), orig.TaskIDs(); !reflect.DeepEqual(got, want) {
				t.Fatalf("task IDs differ: %v vs %v", got, want)
			}
			if got, want := restored.WorkerIDs(), orig.WorkerIDs(); !reflect.DeepEqual(got, want) {
				t.Fatalf("worker IDs differ: %v vs %v", got, want)
			}
			if got, want := restored.PendingCount(), orig.PendingCount(); got != want {
				t.Fatalf("pending count %d, want %d", got, want)
			}
			if got, want := restored.RemainingBudget(), orig.RemainingBudget(); got != want {
				t.Fatalf("budget %d after restore, original had %d (double-spend?)", got, want)
			}

			origRes, err := orig.Results(ctx)
			if err != nil {
				t.Fatal(err)
			}
			restRes, err := restored.Results(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(origRes, restRes) {
				t.Fatal("restored Results are not bit-identical to the original's")
			}

			// Worker estimates (merged across shards/cities where relevant).
			for _, w := range orig.WorkerIDs() {
				oi, err := orig.WorkerInfo(w)
				if err != nil {
					t.Fatal(err)
				}
				ri, err := restored.WorkerInfo(w)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(oi, ri) {
					t.Fatalf("worker %s estimate differs: %+v vs %+v", w, oi, ri)
				}
			}

			// The next assignment round must be plan-for-plan identical, and
			// spend the same budget.
			all := orig.WorkerIDs()
			origPlan, err := orig.RequestTasks(ctx, all)
			if err != nil {
				t.Fatal(err)
			}
			restPlan, err := restored.RequestTasks(ctx, all)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(origPlan, restPlan) {
				t.Fatalf("assignment plans diverge after restore:\n%v\nvs\n%v", origPlan, restPlan)
			}
			if got, want := restored.RemainingBudget(), orig.RemainingBudget(); got != want {
				t.Fatalf("post-round budget %d, want %d", got, want)
			}

			// Already-pending pairs stay deduped after restore: nothing in
			// the new plan may repeat a pre-checkpoint pending pair.
			for w, ts := range restPlan {
				for _, taskID := range ts {
					if origPlan[w] == nil {
						t.Fatalf("restored plan has worker %s the original lacks", w)
					}
					_ = taskID
				}
			}
		})
	}
}

// TestServiceCheckpointBeforeEngineBuilt covers the registration-only
// window: a service checkpointed before any answer or assignment (engine
// not yet constructed) restores and then serves normally.
func TestServiceCheckpointBeforeEngineBuilt(t *testing.T) {
	ctx := context.Background()
	svc, err := NewService(WithBudget(10))
	if err != nil {
		t.Fatal(err)
	}
	truth := registerTinyWorld(t, svc)
	var buf bytes.Buffer
	if err := svc.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}

	restored, err := NewService(WithBudget(10))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if restored.NumTasks() != svc.NumTasks() || restored.NumWorkers() != svc.NumWorkers() {
		t.Fatalf("restored %d/%d tasks/workers, want %d/%d",
			restored.NumTasks(), restored.NumWorkers(), svc.NumTasks(), svc.NumWorkers())
	}
	rng := rand.New(rand.NewSource(5))
	submit(t, restored, 0, 0, truth, 0.9, rng)
	if _, err := restored.Results(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestServiceRestoreValidation(t *testing.T) {
	_, snap := buildMidStreamService(t, WithEngine(EngineSharded), WithShards(2), WithBudget(30), WithFullEMInterval(5))

	t.Run("non-empty service", func(t *testing.T) {
		svc, err := NewService(WithEngine(EngineSharded), WithShards(2))
		if err != nil {
			t.Fatal(err)
		}
		registerTinyWorld(t, svc)
		if err := svc.Restore(bytes.NewReader(snap)); err == nil {
			t.Fatal("restored into a populated service")
		}
	})

	t.Run("engine mismatch", func(t *testing.T) {
		svc, err := NewService(WithEngine(EngineSingle))
		if err != nil {
			t.Fatal(err)
		}
		err = svc.Restore(bytes.NewReader(snap))
		if err == nil || !strings.Contains(err.Error(), "engine") {
			t.Fatalf("engine mismatch not rejected: %v", err)
		}
		// Failed restore leaves the service usable and empty.
		if svc.NumTasks() != 0 || svc.NumWorkers() != 0 {
			t.Fatal("failed restore left state behind")
		}
	})

	t.Run("shard-count mismatch", func(t *testing.T) {
		svc, err := NewService(WithEngine(EngineSharded), WithShards(3))
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Restore(bytes.NewReader(snap)); err == nil {
			t.Fatal("shard-count mismatch not rejected")
		}
	})

	t.Run("garbage stream", func(t *testing.T) {
		svc, err := NewService(WithEngine(EngineSharded), WithShards(2))
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.Restore(strings.NewReader("not a snapshot")); err == nil {
			t.Fatal("garbage accepted")
		}
	})
}

// TestServiceSaveLoadCheckpointFile exercises the atomic file path end to
// end, including overwriting an existing snapshot.
func TestServiceSaveLoadCheckpointFile(t *testing.T) {
	ctx := context.Background()
	path := t.TempDir() + "/service.snap"
	orig, _ := buildMidStreamService(t, WithBudget(30), WithFullEMInterval(5))
	if _, err := orig.SaveCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with a later state: one more answer.
	truthTasks, _, truth := tinyWorld()
	_ = truthTasks
	rng := rand.New(rand.NewSource(17))
	submit(t, orig, 2, 7, truth, 0.9, rng)
	n, err := orig.SaveCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("zero-byte checkpoint")
	}

	restored, err := NewService(WithBudget(30), WithFullEMInterval(5))
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.LoadCheckpoint(path); err != nil {
		t.Fatal(err)
	}
	a, err := orig.Results(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.Results(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("file round trip changed results")
	}
}

// TestServiceCheckpointDuringTraffic checkpoints repeatedly while answers
// and assignment rounds are in flight, exercising the read-locked capture
// against concurrent writers (run under -race in CI), and requires every
// captured snapshot to be restorable.
func TestServiceCheckpointDuringTraffic(t *testing.T) {
	ctx := context.Background()
	opts := []ServiceOption{WithEngine(EngineSharded), WithShards(2), WithFullEMInterval(4), WithBudget(200)}
	svc, err := NewService(opts...)
	if err != nil {
		t.Fatal(err)
	}
	truth := registerTinyWorld(t, svc)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(23))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			w, task := i%4, i%8
			a := answer(WorkerID(w), TaskID(task), truth, 0.9, rng)
			// Duplicate (worker, task) submissions error; that's fine here.
			_ = svc.SubmitAnswer(wid(w), tid(task), a.Selected)
			_, _ = svc.RequestTasks(ctx, []string{wid(w)})
		}
	}()

	var lastSnap []byte
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		if err := svc.Checkpoint(&buf); err != nil {
			t.Errorf("checkpoint under traffic: %v", err)
			break
		}
		lastSnap = buf.Bytes()
	}
	close(stop)
	wg.Wait()

	restored, err := NewService(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(bytes.NewReader(lastSnap)); err != nil {
		t.Fatalf("snapshot taken under traffic is not restorable: %v", err)
	}
	if _, err := restored.Results(ctx); err != nil {
		t.Fatal(err)
	}
}
