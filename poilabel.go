// Package poilabel is a Go implementation of "Crowdsourced POI Labelling:
// Location-Aware Result Inference and Task Assignment" (Hu, Zheng, Bao, Li,
// Feng, Cheng — ICDE 2016).
//
// Given a set of POI labelling tasks (each a point of interest with
// candidate labels) and a pool of workers with known locations, the package
// provides the paper's full framework:
//
//   - a location-aware inference model that estimates each worker's
//     inherent quality, each worker's distance sensitivity, each POI's
//     influence, and the posterior probability of every candidate label —
//     updated by full EM or cheap incremental EM as answers stream in;
//   - an online task assigner (AccOpt) that, whenever workers request
//     tasks, chooses the h tasks per worker that maximize the expected
//     improvement in overall inference accuracy, within a fixed budget of
//     paid assignments.
//
// The Framework type ties the two together in the paper's alternating
// protocol: call RequestTasks when workers arrive, hand the chosen tasks to
// your crowd, and feed answers back through SubmitAnswer. At any point
// Results returns the current yes/no decision and probability for every
// label.
//
// # Quick start
//
//	fw, err := poilabel.New(tasks, workers)
//	if err != nil { ... }
//	for fw.RemainingBudget() > 0 {
//		arrived := pollWorkers()                  // your worker arrivals
//		assigned, _ := fw.RequestTasks(arrived)   // paper's task assigner
//		for w, ts := range assigned {
//			for _, t := range ts {
//				fw.SubmitAnswer(askWorker(w, t))  // your crowd answers
//			}
//		}
//	}
//	res := fw.Results()
//
// Lower-level building blocks (the raw inference model, the assignment
// estimator, majority voting and Dawid–Skene baselines, dataset generators
// and the crowd simulator used by the reproduction benchmarks) live in the
// internal packages and are exercised by the examples and cmd/ tools in
// this repository.
package poilabel

import (
	"errors"
	"fmt"
	"math/rand"

	"poilabel/internal/assign"
	"poilabel/internal/baseline"
	"poilabel/internal/core"
	"poilabel/internal/geo"
	"poilabel/internal/model"
	"poilabel/internal/shard"
)

// Re-exported domain types. See the internal/model package for full
// documentation of each.
type (
	// Task is a POI labelling task: a named, located POI with candidate
	// labels.
	Task = model.Task
	// Worker is a crowd worker with one or more locations.
	Worker = model.Worker
	// Answer is one worker's yes/no votes on one task's labels.
	Answer = model.Answer
	// TaskID indexes a task.
	TaskID = model.TaskID
	// WorkerID indexes a worker.
	WorkerID = model.WorkerID
	// GroundTruth holds true label values, for evaluation.
	GroundTruth = model.GroundTruth
	// Result is an inference outcome: decisions and probabilities per label.
	Result = model.Result
	// Point is a 2-D location.
	Point = geo.Point
)

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return geo.Pt(x, y) }

// Accuracy computes the paper's evaluation metric (Equation 1) of a result
// against ground truth.
func Accuracy(res *Result, truth *GroundTruth) float64 {
	return model.Accuracy(res, truth)
}

// AssignerKind selects a task assignment strategy for the Framework.
type AssignerKind int

// Available assignment strategies.
const (
	// AssignerAccOpt is the paper's accuracy-optimal greedy assigner
	// (Algorithm 1) — the default.
	AssignerAccOpt AssignerKind = iota
	// AssignerSpatialFirst assigns each worker their closest undone tasks.
	AssignerSpatialFirst
	// AssignerRandom assigns undone tasks uniformly at random.
	AssignerRandom
	// AssignerEntropy assigns the undone tasks with the highest label
	// uncertainty (the entropy-based selection of CDAS, discussed as
	// related work in the paper's Section VI).
	AssignerEntropy
	// AssignerMarginalGreedy is the marginal-gain variant of the paper's
	// Algorithm 1; it tracks the Definition 7 objective more closely than
	// the literal pseudocode (see EXPERIMENTS.md).
	AssignerMarginalGreedy
)

// Options configure a Framework. The zero value of each field means "use
// the paper's default".
type Options struct {
	// Budget is the total number of (worker, task) assignments the
	// framework will hand out. Zero means unlimited.
	Budget int
	// TasksPerRequest is h, the number of tasks given to each requesting
	// worker. Zero means 2, the paper's HIT size.
	TasksPerRequest int
	// Assigner selects the assignment strategy. Default AccOpt.
	Assigner AssignerKind
	// Model configures the inference model. A zero Config means
	// core.DefaultConfig (α = 0.5, F = {f100, f10, f0.1}, tol 0.005).
	Model core.Config
	// FullEMInterval is the number of submissions between full EM runs
	// (Section III-D); incremental EM runs in between. Zero means 100.
	FullEMInterval int
	// Seed drives the random assigner. Ignored by the others.
	Seed int64
}

// Framework is the paper's POI-labelling framework (Figure 1): an inference
// model and an online task assigner working alternately under a budget.
//
// Framework is not safe for concurrent use.
type Framework struct {
	m       *core.Model
	asg     assign.Assigner
	policy  *core.UpdatePolicy
	h       int
	budget  int // remaining; negative means unlimited
	pending map[pairKey]bool
}

type pairKey struct {
	w WorkerID
	t TaskID
}

// New creates a Framework over the given tasks and workers. Task IDs must
// be their indices in the slice (0..len-1), and likewise for workers;
// distances are normalized by the bounding-box diameter of all task and
// worker locations.
func New(tasks []Task, workers []Worker, opts ...Options) (*Framework, error) {
	var o Options
	switch len(opts) {
	case 0:
	case 1:
		o = opts[0]
	default:
		return nil, errors.New("poilabel: pass at most one Options")
	}
	if o.TasksPerRequest == 0 {
		o.TasksPerRequest = 2
	}
	if o.TasksPerRequest < 0 {
		return nil, fmt.Errorf("poilabel: negative TasksPerRequest %d", o.TasksPerRequest)
	}
	if o.FullEMInterval == 0 {
		o.FullEMInterval = 100
	}
	cfg := o.Model
	if cfg.FuncSet == nil {
		cfg = core.DefaultConfig()
	}

	var pts []Point
	for i := range tasks {
		if int(tasks[i].ID) != i {
			return nil, fmt.Errorf("poilabel: task at index %d has ID %d; IDs must be dense indices", i, tasks[i].ID)
		}
		pts = append(pts, tasks[i].Location)
	}
	for i := range workers {
		if int(workers[i].ID) != i {
			return nil, fmt.Errorf("poilabel: worker at index %d has ID %d; IDs must be dense indices", i, workers[i].ID)
		}
		if len(workers[i].Locations) == 0 {
			return nil, fmt.Errorf("poilabel: worker %d has no locations", i)
		}
		pts = append(pts, workers[i].Locations...)
	}
	if len(pts) == 0 {
		return nil, errors.New("poilabel: no tasks")
	}

	m, err := core.NewModel(tasks, workers, geo.NormalizerFor(pts), cfg)
	if err != nil {
		return nil, err
	}

	var asg assign.Assigner
	switch o.Assigner {
	case AssignerAccOpt:
		// The framework assigns round after round against one model, so
		// hold a Planner and reuse its O(|W|·|T|) scratch across rounds.
		asg = assign.NewPlanner()
	case AssignerSpatialFirst:
		asg = assign.NewSpatialFirst(tasks)
	case AssignerRandom:
		asg = assign.Random{Rand: rand.New(rand.NewSource(o.Seed))}
	case AssignerEntropy:
		asg = assign.EntropyFirst{}
	case AssignerMarginalGreedy:
		asg = assign.NewMarginalPlanner()
	default:
		return nil, fmt.Errorf("poilabel: unknown assigner kind %d", o.Assigner)
	}

	budget := o.Budget
	if budget == 0 {
		budget = -1
	}
	return &Framework{
		m:       m,
		asg:     asg,
		policy:  &core.UpdatePolicy{FullEMInterval: o.FullEMInterval, Incremental: true},
		h:       o.TasksPerRequest,
		budget:  budget,
		pending: make(map[pairKey]bool),
	}, nil
}

// RemainingBudget returns the number of assignments still available, or -1
// when the framework was created without a budget.
func (f *Framework) RemainingBudget() int { return f.budget }

// RequestTasks runs the task assigner for a set of requesting workers and
// returns up to h tasks per worker, bounded by the remaining budget.
// Returned assignments are recorded as pending; the framework expects a
// SubmitAnswer for each.
func (f *Framework) RequestTasks(workers []WorkerID) (map[WorkerID][]TaskID, error) {
	if f.budget == 0 {
		return nil, ErrBudgetExhausted
	}
	for _, w := range workers {
		if int(w) < 0 || int(w) >= len(f.m.Workers()) {
			return nil, fmt.Errorf("poilabel: unknown worker %d", w)
		}
	}
	a := f.asg.Assign(f.m, workers, f.h)
	out := make(map[WorkerID][]TaskID, len(a))
	for _, w := range workers {
		for _, t := range a[w] {
			if f.budget == 0 {
				break
			}
			if f.pending[pairKey{w, t}] {
				continue
			}
			out[w] = append(out[w], t)
			f.pending[pairKey{w, t}] = true
			if f.budget > 0 {
				f.budget--
			}
		}
	}
	return out, nil
}

// ErrBudgetExhausted is returned by RequestTasks when the assignment budget
// has been fully spent.
var ErrBudgetExhausted = errors.New("poilabel: assignment budget exhausted")

// SubmitAnswer feeds one worker answer into the inference model, updating
// parameter estimates per the configured policy (incremental EM, with a
// periodic full EM). Answers for tasks that were not assigned through
// RequestTasks are accepted too — the model simply learns from them without
// touching the budget.
func (f *Framework) SubmitAnswer(a Answer) error {
	delete(f.pending, pairKey{a.Worker, a.Task})
	_, err := f.policy.Apply(f.m, a)
	return err
}

// Refit forces a full EM pass over all answers received so far and reports
// whether it converged within the configured iteration cap.
func (f *Framework) Refit() bool { return f.m.Fit().Converged }

// Results returns the current inference: for every task and label, the
// probability it is a correct label and the thresholded decision.
func (f *Framework) Results() *Result {
	// A full EM pass makes the returned snapshot self-consistent (the
	// incremental updates between full runs only touch local parameters).
	f.m.Fit()
	return f.m.Result()
}

// WorkerQuality returns the estimated inherent quality P(i_w = 1) of a
// worker (Definition 2).
func (f *Framework) WorkerQuality(w WorkerID) float64 { return f.m.WorkerQuality(w) }

// AnswerAccuracy returns the model's estimate of the probability that
// worker w answers task t correctly (Equation 9), combining the worker's
// inherent quality, distance-aware quality, and the POI's influence.
func (f *Framework) AnswerAccuracy(w WorkerID, t TaskID) float64 {
	return f.m.AgreementProb(w, t)
}

// POIInfluence returns the estimated influence weights of task t over the
// model's distance-function set, ordered from the steepest (most local)
// function to the widest. A large final component means a famous POI that
// distant workers still answer well.
func (f *Framework) POIInfluence(t TaskID) []float64 {
	p := f.m.Params().PDT[t]
	return append([]float64(nil), p...)
}

// DistanceSensitivity returns the estimated sensitivity weights of worker w
// over the distance-function set, from steepest to widest.
func (f *Framework) DistanceSensitivity(w WorkerID) []float64 {
	p := f.m.Params().PDW[w]
	return append([]float64(nil), p...)
}

// EstimatedAccuracy returns the model's own estimate of the current overall
// accuracy: the mean over all labels of max(P(z), 1−P(z)) — the Equation 15
// accuracy under the model's best guess for each label's truth. It rises
// toward 1 as evidence accumulates and is the natural signal for budget-
// aware early stopping ("stop paying once estimated accuracy exceeds X").
func (f *Framework) EstimatedAccuracy() float64 {
	params := f.m.Params()
	var sum float64
	var n int
	for t := range params.PZ {
		for _, p := range params.PZ[t] {
			if p < 0.5 {
				p = 1 - p
			}
			sum += p
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// SaveCheckpoint persists the framework's learned state (answer log and
// parameter estimates) to a file; a new Framework over the same tasks and
// workers can LoadCheckpoint to resume without replaying history.
func (f *Framework) SaveCheckpoint(path string) error { return f.m.SaveCheckpoint(path) }

// LoadCheckpoint restores learned state saved by SaveCheckpoint.
func (f *Framework) LoadCheckpoint(path string) error { return f.m.LoadCheckpoint(path) }

// Model exposes the underlying inference model for advanced use (parameter
// inspection, custom assignment). Mutating it bypasses the framework's
// budget accounting.
func (f *Framework) Model() *core.Model { return f.m }

// ShardOptions configure a ShardedModel. The zero value of each field means
// "use the default".
type ShardOptions struct {
	// Shards is K, the number of geographic partitions. Zero means 4;
	// values above the task count are clamped.
	Shards int
	// RefineSweeps is the number of cross-shard refinement sweeps per Fit:
	// each sweep pushes the merged parameters of roaming workers (answers
	// in more than one shard) back into their shards and refits. Zero means
	// none.
	RefineSweeps int
	// Model configures every per-shard inference model. A zero Config means
	// core.DefaultConfig.
	Model core.Config
}

// ShardFitStats reports the outcome of a sharded fit. See the shard package
// for field documentation.
type ShardFitStats = shard.FitStats

// ShardedModel fits the paper's inference model over K geographic shards of
// one city's tasks. The answer graph is naturally near-block-diagonal by
// geography, so shards fit concurrently (one full-EM run each) and merge:
// per-task label posteriors concatenate directly, while roaming workers'
// quality and distance-sensitivity estimates are averaged weighted by answer
// count, optionally refined by cross-shard sweeps. Task assignment plans
// AccOpt within each shard under a thin budget-balancing coordinator.
//
// Use a ShardedModel instead of a Framework when the workload is batch
// oriented and large — city-scale answer logs where a single model's EM
// becomes the wall-clock bottleneck (see PERFORMANCE.md for when sharding
// helps). Methods are not safe for concurrent use; Fit and AssignTasks fan
// out over the shards internally.
type ShardedModel struct {
	sh *shard.Sharded
	co *shard.Coordinator
}

// NewShardedModel creates a sharded model over the given tasks and workers.
// ID and location requirements match New; distances are normalized by the
// bounding-box diameter of all task and worker locations, so per-shard
// distances stay on the same scale as an unsharded model's.
func NewShardedModel(tasks []Task, workers []Worker, opts ...ShardOptions) (*ShardedModel, error) {
	var o ShardOptions
	switch len(opts) {
	case 0:
	case 1:
		o = opts[0]
	default:
		return nil, errors.New("poilabel: pass at most one ShardOptions")
	}
	var pts []Point
	for i := range tasks {
		pts = append(pts, tasks[i].Location)
	}
	for i := range workers {
		if len(workers[i].Locations) == 0 {
			return nil, fmt.Errorf("poilabel: worker %d has no locations", i)
		}
		pts = append(pts, workers[i].Locations...)
	}
	if len(pts) == 0 {
		return nil, errors.New("poilabel: no tasks")
	}
	sh, err := shard.New(tasks, workers, geo.NormalizerFor(pts), shard.Config{
		Shards:       o.Shards,
		RefineSweeps: o.RefineSweeps,
		Model:        o.Model,
	})
	if err != nil {
		return nil, err
	}
	return &ShardedModel{sh: sh, co: shard.NewCoordinator(sh)}, nil
}

// SubmitAnswer routes one worker answer to the shard owning its task. Unlike
// the Framework, a ShardedModel does not update estimates per answer; call
// Fit after a batch.
func (sm *ShardedModel) SubmitAnswer(a Answer) error { return sm.sh.Observe(a) }

// Fit runs full EM on every shard concurrently, merges roaming-worker
// estimates, and runs the configured refinement sweeps.
func (sm *ShardedModel) Fit() ShardFitStats { return sm.sh.Fit() }

// Results returns the current city-wide inference, concatenated over shards.
func (sm *ShardedModel) Results() *Result { return sm.sh.Result() }

// AssignTasks chooses up to h tasks per requesting worker — AccOpt planned
// inside each worker's home shard — spending at most budget (worker, task)
// pairs in total; a negative budget means unlimited. Returned task IDs are
// global. The call is stateless: the caller owns budget accounting across
// rounds.
func (sm *ShardedModel) AssignTasks(workers []WorkerID, h, budget int) (map[WorkerID][]TaskID, error) {
	if h <= 0 {
		return nil, fmt.Errorf("poilabel: non-positive h %d", h)
	}
	for _, w := range workers {
		if int(w) < 0 || int(w) >= len(sm.sh.Workers()) {
			return nil, fmt.Errorf("poilabel: unknown worker %d", w)
		}
	}
	return sm.co.Assign(workers, h, budget), nil
}

// WorkerQuality returns the merged estimate of P(i_w = 1): for a roaming
// worker, the answer-count-weighted average over the shards they answered in.
func (sm *ShardedModel) WorkerQuality(w WorkerID) float64 { return sm.sh.WorkerQuality(w) }

// DistanceSensitivity returns the merged sensitivity weights of worker w
// over the distance-function set, from steepest to widest.
func (sm *ShardedModel) DistanceSensitivity(w WorkerID) []float64 {
	return sm.sh.DistanceSensitivity(w)
}

// NumShards returns the number of geographic shards actually in use.
func (sm *ShardedModel) NumShards() int { return sm.sh.NumShards() }

// TaskShard returns the shard owning task t.
func (sm *ShardedModel) TaskShard(t TaskID) int { return sm.sh.TaskShard(t) }

// MajorityVote runs the MV baseline over an external answer log.
// It is a convenience for comparing the paper's model with naive
// aggregation on the same data.
func MajorityVote(tasks []Task, answers []Answer) (*Result, error) {
	set := model.NewAnswerSet()
	for _, a := range answers {
		if err := set.Add(a); err != nil {
			return nil, err
		}
	}
	return baseline.MajorityVote{}.Infer(tasks, set), nil
}

// DawidSkene runs the classic confusion-matrix EM baseline [Dawid & Skene
// 1979] over an external answer log.
func DawidSkene(tasks []Task, answers []Answer) (*Result, error) {
	set := model.NewAnswerSet()
	for _, a := range answers {
		if err := set.Add(a); err != nil {
			return nil, err
		}
	}
	return baseline.DawidSkene{}.Infer(tasks, set), nil
}

// FlagBiasedWorkers screens an answer log for systematically biased
// workers — lazy affirmers who tick (almost) everything or rejecters who
// tick (almost) nothing. The paper's inference model represents workers by
// a single symmetric agreement probability and cannot express directional
// bias, so such workers should be filtered before fitting (see the
// ablation-adversary experiment in EXPERIMENTS.md). The returned IDs can
// be excluded from future assignment rounds and their answers dropped.
func FlagBiasedWorkers(answers []Answer) ([]WorkerID, error) {
	set := model.NewAnswerSet()
	for _, a := range answers {
		if err := set.Add(a); err != nil {
			return nil, err
		}
	}
	return baseline.BiasScreen{}.Flag(set), nil
}
