// Package poilabel is a Go implementation of "Crowdsourced POI Labelling:
// Location-Aware Result Inference and Task Assignment" (Hu, Zheng, Bao, Li,
// Feng, Cheng — ICDE 2016).
//
// Given a set of POI labelling tasks (each a point of interest with
// candidate labels) and a pool of workers with known locations, the package
// provides the paper's full framework:
//
//   - a location-aware inference model that estimates each worker's
//     inherent quality, each worker's distance sensitivity, each POI's
//     influence, and the posterior probability of every candidate label —
//     updated by full EM or cheap incremental EM as answers stream in;
//   - an online task assigner (AccOpt) that, whenever workers request
//     tasks, chooses the h tasks per worker that maximize the expected
//     improvement in overall inference accuracy, within a fixed budget of
//     paid assignments.
//
// The Service type ties the two together in the paper's alternating
// protocol behind one concurrency-safe front door: register tasks and
// workers under stable string IDs (at construction or on the fly), call
// RequestTasks when workers arrive, hand the chosen tasks to your crowd,
// and feed answers back through SubmitAnswer. At any point Results returns
// the current decision and probability for every label. The backend is
// pluggable: a single model (default), one city geo-sharded across K
// concurrent fitters, or a multi-city federation — all behind the same API.
//
// # Quick start
//
//	svc, err := poilabel.NewService(poilabel.WithBudget(1000))
//	if err != nil { ... }
//	svc.AddTask("poi:cafe-9", poilabel.TaskSpec{
//		Location: poilabel.Pt(3.2, 4.1),
//		Labels:   []string{"cafe", "bar", "wifi"},
//	})
//	svc.AddWorker("alice", poilabel.WorkerSpec{Locations: []poilabel.Point{poilabel.Pt(3, 4)}})
//	for {
//		assigned, err := svc.RequestTasks(ctx, pollWorkers()) // paper's task assigner
//		if errors.Is(err, poilabel.ErrBudgetExhausted) {
//			break
//		}
//		for w, tasks := range assigned {
//			for _, t := range tasks {
//				svc.SubmitAnswer(w, t, askWorker(w, t)) // your crowd answers
//			}
//		}
//	}
//	results, _ := svc.Results(ctx)
//
// Scale past one model with WithEngine(EngineSharded) for a single large
// city or WithEngine(EngineFederated) with WithCities(n) for several; see
// PERFORMANCE.md for guidance. cmd/poiserve exposes the same Service over
// HTTP/JSON.
//
// # Durability
//
// Service.Checkpoint and Service.Restore (with the file-level
// SaveCheckpoint/LoadCheckpoint) persist and recover the service's entire
// learned state — answers, estimates, pending assignments, and remaining
// budget — through a versioned snapshot format (internal/snapshot). A
// restored service produces bit-identical Results and assignment plans for
// every engine; docs/ARCHITECTURE.md documents the format and its
// compatibility policy, and cmd/poiserve wires it to -checkpoint/-restore
// flags and a POST /checkpoint endpoint.
//
// # Migrating from Framework and ShardedModel
//
// Framework (per-answer incremental serving) and ShardedModel (batch
// sharded fitting) remain as thin wrappers over Service but are deprecated.
// Framework users: NewService with the same options, register tasks and
// workers by ID, and use RequestTasks/SubmitAnswer/Results as before — IDs
// are now strings you choose, and the service is safe for concurrent use.
// ShardedModel users: NewService(WithEngine(EngineSharded), WithShards(k),
// WithFullEMInterval(0)) reproduces the batch contract — answers only log
// until an explicit Fit. Unlike the old ShardedModel, assignment now
// dedupes pending pairs exactly like the Framework always did.
//
// Lower-level building blocks (the raw inference model, the assignment
// estimator, majority voting and Dawid–Skene baselines, dataset generators
// and the crowd simulator used by the reproduction benchmarks) live in the
// internal packages and are exercised by the examples and cmd/ tools in
// this repository.
package poilabel

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"poilabel/internal/baseline"
	"poilabel/internal/core"
	"poilabel/internal/geo"
	"poilabel/internal/model"
	"poilabel/internal/shard"
)

// Re-exported domain types. See the internal/model package for full
// documentation of each.
type (
	// Task is a POI labelling task: a named, located POI with candidate
	// labels.
	Task = model.Task
	// Worker is a crowd worker with one or more locations.
	Worker = model.Worker
	// Answer is one worker's yes/no votes on one task's labels.
	Answer = model.Answer
	// TaskID indexes a task.
	TaskID = model.TaskID
	// WorkerID indexes a worker.
	WorkerID = model.WorkerID
	// GroundTruth holds true label values, for evaluation.
	GroundTruth = model.GroundTruth
	// Result is an inference outcome: decisions and probabilities per label.
	Result = model.Result
	// Point is a 2-D location.
	Point = geo.Point
)

// Pt is shorthand for Point{X: x, Y: y}.
func Pt(x, y float64) Point { return geo.Pt(x, y) }

// Accuracy computes the paper's evaluation metric (Equation 1) of a result
// against ground truth.
func Accuracy(res *Result, truth *GroundTruth) float64 {
	return model.Accuracy(res, truth)
}

// AssignerKind selects a task assignment strategy for the Framework.
type AssignerKind int

// Available assignment strategies.
const (
	// AssignerAccOpt is the paper's accuracy-optimal greedy assigner
	// (Algorithm 1) — the default.
	AssignerAccOpt AssignerKind = iota
	// AssignerSpatialFirst assigns each worker their closest undone tasks.
	AssignerSpatialFirst
	// AssignerRandom assigns undone tasks uniformly at random.
	AssignerRandom
	// AssignerEntropy assigns the undone tasks with the highest label
	// uncertainty (the entropy-based selection of CDAS, discussed as
	// related work in the paper's Section VI).
	AssignerEntropy
	// AssignerMarginalGreedy is the marginal-gain variant of the paper's
	// Algorithm 1; it tracks the Definition 7 objective more closely than
	// the literal pseudocode (see EXPERIMENTS.md).
	AssignerMarginalGreedy
)

// Options configure a Framework. The zero value of each field means "use
// the paper's default".
type Options struct {
	// Budget is the total number of (worker, task) assignments the
	// framework will hand out. Zero means unlimited.
	Budget int
	// TasksPerRequest is h, the number of tasks given to each requesting
	// worker. Zero means 2, the paper's HIT size.
	TasksPerRequest int
	// Assigner selects the assignment strategy. Default AccOpt.
	Assigner AssignerKind
	// Model configures the inference model. A zero Config means
	// core.DefaultConfig (α = 0.5, F = {f100, f10, f0.1}, tol 0.005).
	Model core.Config
	// FullEMInterval is the number of submissions between full EM runs
	// (Section III-D); incremental EM runs in between. Zero means 100.
	FullEMInterval int
	// Seed drives the random assigner. Ignored by the others.
	Seed int64
}

// Framework is the paper's POI-labelling framework (Figure 1): an inference
// model and an online task assigner working alternately under a budget. It
// is now a thin wrapper over a Service running the single engine with
// dense integer IDs.
//
// Deprecated: use Service, which serves the same protocol concurrency-
// safely, accepts stable string IDs with dynamic registration, and scales
// to sharded and federated backends. Framework is kept for compatibility.
//
// Framework is not safe for concurrent use.
type Framework struct {
	svc *Service
	m   *core.Model
}

type pairKey struct {
	w WorkerID
	t TaskID
}

// denseID is the stable string ID the legacy wrappers register dense
// integer IDs under.
func denseID(i int) string { return strconv.Itoa(i) }

// registerDense validates the legacy dense-ID contract and registers every
// task and worker with the service under its stringified index.
func registerDense(svc *Service, tasks []Task, workers []Worker) error {
	if len(tasks) == 0 {
		return errors.New("poilabel: no tasks")
	}
	for i := range tasks {
		if int(tasks[i].ID) != i {
			return fmt.Errorf("poilabel: task at index %d has ID %d; IDs must be dense indices", i, tasks[i].ID)
		}
	}
	for i := range workers {
		if int(workers[i].ID) != i {
			return fmt.Errorf("poilabel: worker at index %d has ID %d; IDs must be dense indices", i, workers[i].ID)
		}
		if len(workers[i].Locations) == 0 {
			return fmt.Errorf("poilabel: worker %d has no locations", i)
		}
	}
	for i := range tasks {
		if err := svc.AddTask(denseID(i), TaskSpec{
			Name:     tasks[i].Name,
			Location: tasks[i].Location,
			Labels:   tasks[i].Labels,
			Reviews:  tasks[i].Reviews,
		}); err != nil {
			return err
		}
	}
	for i := range workers {
		if err := svc.AddWorker(denseID(i), WorkerSpec{
			Name:      workers[i].Name,
			Locations: workers[i].Locations,
		}); err != nil {
			return err
		}
	}
	return nil
}

// New creates a Framework over the given tasks and workers. Task IDs must
// be their indices in the slice (0..len-1), and likewise for workers;
// distances are normalized by the bounding-box diameter of all task and
// worker locations.
//
// Deprecated: use NewService.
func New(tasks []Task, workers []Worker, opts ...Options) (*Framework, error) {
	var o Options
	switch len(opts) {
	case 0:
	case 1:
		o = opts[0]
	default:
		return nil, errors.New("poilabel: pass at most one Options")
	}
	if o.TasksPerRequest == 0 {
		o.TasksPerRequest = 2
	}
	if o.TasksPerRequest < 0 {
		return nil, fmt.Errorf("poilabel: negative TasksPerRequest %d", o.TasksPerRequest)
	}
	if o.FullEMInterval == 0 {
		o.FullEMInterval = 100
	}
	cfg := o.Model
	if cfg.FuncSet == nil {
		cfg = core.DefaultConfig()
	}
	svc, err := NewService(
		WithEngine(EngineSingle),
		WithAssigner(o.Assigner),
		WithBudget(orUnlimited(o.Budget)),
		WithTasksPerRequest(o.TasksPerRequest),
		WithFullEMInterval(o.FullEMInterval),
		WithSeed(o.Seed),
		WithModelConfig(cfg),
	)
	if err != nil {
		return nil, err
	}
	if err := registerDense(svc, tasks, workers); err != nil {
		return nil, err
	}
	eng, err := svc.engine()
	if err != nil {
		return nil, err
	}
	return &Framework{svc: svc, m: eng.(*singleEngine).Model()}, nil
}

// orUnlimited maps the legacy Options convention (0 means unlimited) onto
// WithBudget's (negative means unlimited).
func orUnlimited(budget int) int {
	if budget == 0 {
		return -1
	}
	return budget
}

// RemainingBudget returns the number of assignments still available, or -1
// when the framework was created without a budget.
func (f *Framework) RemainingBudget() int { return f.svc.RemainingBudget() }

// RequestTasks runs the task assigner for a set of requesting workers and
// returns up to h tasks per worker, bounded by the remaining budget.
// Returned assignments are recorded as pending; the framework expects a
// SubmitAnswer for each, and pending pairs are excluded from later rounds.
func (f *Framework) RequestTasks(workers []WorkerID) (map[WorkerID][]TaskID, error) {
	ids := make([]string, len(workers))
	for i, w := range workers {
		if int(w) < 0 || int(w) >= f.svc.NumWorkers() {
			return nil, fmt.Errorf("%w: %d", ErrUnknownWorker, w)
		}
		ids[i] = denseID(int(w))
	}
	//lint:ignore ctxflow Framework is the in-process context-free facade; use Service for deadlines
	assigned, err := f.svc.RequestTasks(context.Background(), ids)
	if err != nil {
		return nil, err
	}
	out := make(map[WorkerID][]TaskID, len(assigned))
	for wid, ts := range assigned {
		w, err := strconv.Atoi(wid)
		if err != nil {
			return nil, fmt.Errorf("poilabel: non-dense worker id %q", wid)
		}
		tasks := make([]TaskID, len(ts))
		for i, tid := range ts {
			t, err := strconv.Atoi(tid)
			if err != nil {
				return nil, fmt.Errorf("poilabel: non-dense task id %q", tid)
			}
			tasks[i] = TaskID(t)
		}
		out[WorkerID(w)] = tasks
	}
	return out, nil
}

// ErrBudgetExhausted is returned by RequestTasks when the assignment budget
// has been fully spent.
var ErrBudgetExhausted = errors.New("poilabel: assignment budget exhausted")

// SubmitAnswer feeds one worker answer into the inference model, updating
// parameter estimates per the configured policy (incremental EM, with a
// periodic full EM). Answers for tasks that were not assigned through
// RequestTasks are accepted too — the model simply learns from them without
// touching the budget.
func (f *Framework) SubmitAnswer(a Answer) error {
	return f.svc.SubmitAnswer(denseID(int(a.Worker)), denseID(int(a.Task)), a.Selected)
}

// Refit forces a full EM pass over all answers received so far and reports
// whether it converged within the configured iteration cap.
func (f *Framework) Refit() bool {
	//lint:ignore ctxflow Framework is the in-process context-free facade; use Service for deadlines
	converged, _ := f.svc.Fit(context.Background())
	return converged
}

// Results returns the current inference: for every task and label, the
// probability it is a correct label and the thresholded decision.
func (f *Framework) Results() *Result {
	// A full EM pass makes the returned snapshot self-consistent (the
	// incremental updates between full runs only touch local parameters).
	//lint:ignore ctxflow Framework is the in-process context-free facade; use Service for deadlines
	res, _ := f.svc.ResultSet(context.Background())
	return res
}

// WorkerQuality returns the estimated inherent quality P(i_w = 1) of a
// worker (Definition 2).
func (f *Framework) WorkerQuality(w WorkerID) float64 { return f.m.WorkerQuality(w) }

// AnswerAccuracy returns the model's estimate of the probability that
// worker w answers task t correctly (Equation 9), combining the worker's
// inherent quality, distance-aware quality, and the POI's influence.
func (f *Framework) AnswerAccuracy(w WorkerID, t TaskID) float64 {
	return f.m.AgreementProb(w, t)
}

// POIInfluence returns the estimated influence weights of task t over the
// model's distance-function set, ordered from the steepest (most local)
// function to the widest. A large final component means a famous POI that
// distant workers still answer well.
func (f *Framework) POIInfluence(t TaskID) []float64 {
	p := f.m.Params().PDT[t]
	return append([]float64(nil), p...)
}

// DistanceSensitivity returns the estimated sensitivity weights of worker w
// over the distance-function set, from steepest to widest.
func (f *Framework) DistanceSensitivity(w WorkerID) []float64 {
	p := f.m.Params().PDW[w]
	return append([]float64(nil), p...)
}

// EstimatedAccuracy returns the model's own estimate of the current overall
// accuracy: the mean over all labels of max(P(z), 1−P(z)) — the Equation 15
// accuracy under the model's best guess for each label's truth. It rises
// toward 1 as evidence accumulates and is the natural signal for budget-
// aware early stopping ("stop paying once estimated accuracy exceeds X").
func (f *Framework) EstimatedAccuracy() float64 {
	params := f.m.Params()
	var sum float64
	var n int
	for t := range params.PZ {
		for _, p := range params.PZ[t] {
			if p < 0.5 {
				p = 1 - p
			}
			sum += p
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// SaveCheckpoint persists the framework's learned state (answer log and
// parameter estimates) to a file; a new Framework over the same tasks and
// workers can LoadCheckpoint to resume without replaying history.
func (f *Framework) SaveCheckpoint(path string) error { return f.m.SaveCheckpoint(path) }

// LoadCheckpoint restores learned state saved by SaveCheckpoint.
func (f *Framework) LoadCheckpoint(path string) error {
	if err := f.m.LoadCheckpoint(path); err != nil {
		return err
	}
	// The model changed behind the service's back; force the next Results
	// to refit over the restored log.
	f.svc.invalidate()
	return nil
}

// Model exposes the underlying inference model for advanced use (parameter
// inspection, custom assignment). Mutating it bypasses the framework's
// budget accounting.
func (f *Framework) Model() *core.Model { return f.m }

// ShardOptions configure a ShardedModel. The zero value of each field means
// "use the default".
type ShardOptions struct {
	// Shards is K, the number of geographic partitions. Zero means 4;
	// values above the task count are clamped.
	Shards int
	// RefineSweeps is the number of cross-shard refinement sweeps per Fit:
	// each sweep pushes the merged parameters of roaming workers (answers
	// in more than one shard) back into their shards and refits. Zero means
	// none.
	RefineSweeps int
	// Model configures every per-shard inference model. A zero Config means
	// core.DefaultConfig.
	Model core.Config
}

// ShardFitStats reports the outcome of a sharded fit. See the shard package
// for field documentation.
type ShardFitStats = shard.FitStats

// ShardedModel fits the paper's inference model over K geographic shards of
// one city's tasks. The answer graph is naturally near-block-diagonal by
// geography, so shards fit concurrently (one full-EM run each) and merge:
// per-task label posteriors concatenate directly, while roaming workers'
// quality and distance-sensitivity estimates are averaged weighted by answer
// count, optionally refined by cross-shard sweeps. Task assignment plans
// AccOpt within each shard under a thin budget-balancing coordinator. It is
// now a thin wrapper over a Service running the sharded engine with
// automatic fits disabled.
//
// Deprecated: use Service with WithEngine(EngineSharded) and
// WithFullEMInterval(0), which adds concurrency safety, stable string IDs,
// dynamic registration, and a federated multi-city variant.
//
// Methods are not safe for concurrent use; Fit and AssignTasks fan out over
// the shards internally.
type ShardedModel struct {
	svc *Service
	eng *shardedEngine
}

// NewShardedModel creates a sharded model over the given tasks and workers.
// ID and location requirements match New; distances are normalized by the
// bounding-box diameter of all task and worker locations, so per-shard
// distances stay on the same scale as an unsharded model's.
//
// Deprecated: use NewService with WithEngine(EngineSharded).
func NewShardedModel(tasks []Task, workers []Worker, opts ...ShardOptions) (*ShardedModel, error) {
	var o ShardOptions
	switch len(opts) {
	case 0:
	case 1:
		o = opts[0]
	default:
		return nil, errors.New("poilabel: pass at most one ShardOptions")
	}
	cfg := o.Model
	if cfg.FuncSet == nil {
		cfg = core.DefaultConfig()
	}
	svc, err := NewService(
		WithEngine(EngineSharded),
		WithShards(o.Shards),
		WithRefineSweeps(o.RefineSweeps),
		WithModelConfig(cfg),
		// The batch contract: answers only log until an explicit Fit.
		WithFullEMInterval(0),
	)
	if err != nil {
		return nil, err
	}
	if err := registerDense(svc, tasks, workers); err != nil {
		return nil, err
	}
	eng, err := svc.engine()
	if err != nil {
		return nil, err
	}
	return &ShardedModel{svc: svc, eng: eng.(*shardedEngine)}, nil
}

// SubmitAnswer routes one worker answer to the shard owning its task. Unlike
// the Framework, a ShardedModel does not update estimates per answer; call
// Fit after a batch.
func (sm *ShardedModel) SubmitAnswer(a Answer) error {
	return sm.svc.SubmitAnswer(denseID(int(a.Worker)), denseID(int(a.Task)), a.Selected)
}

// Fit runs full EM on every shard concurrently, merges roaming-worker
// estimates, and runs the configured refinement sweeps.
func (sm *ShardedModel) Fit() ShardFitStats {
	//lint:ignore ctxflow ShardedModel is the in-process context-free facade; use Service for deadlines
	sm.svc.Fit(context.Background())
	return sm.eng.lastStats
}

// Results returns the current city-wide inference, concatenated over shards.
// Unlike Service.Results it does not force a fit first.
func (sm *ShardedModel) Results() *Result {
	res, _ := sm.svc.currentResult()
	return res
}

// AssignTasks chooses up to h tasks per requesting worker — AccOpt planned
// inside each worker's home shard — spending at most budget (worker, task)
// pairs in total; a negative budget means unlimited. Returned task IDs are
// global. The caller owns budget accounting across rounds, but pending
// dedup is automatic: handed-out pairs are excluded from later rounds until
// their answer arrives, matching the Framework's contract.
func (sm *ShardedModel) AssignTasks(workers []WorkerID, h, budget int) (map[WorkerID][]TaskID, error) {
	if h <= 0 {
		return nil, fmt.Errorf("poilabel: non-positive h %d", h)
	}
	for _, w := range workers {
		if int(w) < 0 || int(w) >= sm.svc.NumWorkers() {
			return nil, fmt.Errorf("%w: %d", ErrUnknownWorker, w)
		}
	}
	return sm.svc.assignWithExternalBudget(workers, h, budget)
}

// WorkerQuality returns the merged estimate of P(i_w = 1): for a roaming
// worker, the answer-count-weighted average over the shards they answered in.
func (sm *ShardedModel) WorkerQuality(w WorkerID) float64 { return sm.eng.sh.WorkerQuality(w) }

// DistanceSensitivity returns the merged sensitivity weights of worker w
// over the distance-function set, from steepest to widest.
func (sm *ShardedModel) DistanceSensitivity(w WorkerID) []float64 {
	return sm.eng.sh.DistanceSensitivity(w)
}

// NumShards returns the number of geographic shards actually in use.
func (sm *ShardedModel) NumShards() int { return sm.eng.sh.NumShards() }

// TaskShard returns the shard owning task t.
func (sm *ShardedModel) TaskShard(t TaskID) int { return sm.eng.sh.TaskShard(t) }

// MajorityVote runs the MV baseline over an external answer log.
// It is a convenience for comparing the paper's model with naive
// aggregation on the same data.
func MajorityVote(tasks []Task, answers []Answer) (*Result, error) {
	set := model.NewAnswerSet()
	for _, a := range answers {
		if err := set.Add(a); err != nil {
			return nil, err
		}
	}
	return baseline.MajorityVote{}.Infer(tasks, set), nil
}

// DawidSkene runs the classic confusion-matrix EM baseline [Dawid & Skene
// 1979] over an external answer log.
func DawidSkene(tasks []Task, answers []Answer) (*Result, error) {
	set := model.NewAnswerSet()
	for _, a := range answers {
		if err := set.Add(a); err != nil {
			return nil, err
		}
	}
	return baseline.DawidSkene{}.Infer(tasks, set), nil
}

// FlagBiasedWorkers screens an answer log for systematically biased
// workers — lazy affirmers who tick (almost) everything or rejecters who
// tick (almost) nothing. The paper's inference model represents workers by
// a single symmetric agreement probability and cannot express directional
// bias, so such workers should be filtered before fitting (see the
// ablation-adversary experiment in EXPERIMENTS.md). The returned IDs can
// be excluded from future assignment rounds and their answers dropped.
func FlagBiasedWorkers(answers []Answer) ([]WorkerID, error) {
	set := model.NewAnswerSet()
	for _, a := range answers {
		if err := set.Add(a); err != nil {
			return nil, err
		}
	}
	return baseline.BiasScreen{}.Flag(set), nil
}
