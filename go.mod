module poilabel

go 1.22
