module poilabel

go 1.21
